// GPU dual-operator implementations (Section IV of the paper):
//
//  * ExplicitGpuDualOp — the paper's contribution: assembly of the local
//    dual operators F̃ᵢ on the (virtual) GPU with the full Table-I
//    parameter space (path, factor storage/order per solve, RHS order,
//    scatter/gather location), one stream per worker thread, persistent vs
//    temporary memory discipline, and CPU-GPU overlap (numeric
//    factorization of subdomain i+1 runs while the GPU assembles i).
//  * ImplicitGpuDualOp — factors from the simplicial (CHOLMOD-like)
//    solver copied to the device; application via SpMV + two sparse
//    triangular solves + SpMV per subdomain.
//  * HybridDualOp — the prior-work baseline: assembly via the CPU Schur
//    path ("expl mkl"), application on the GPU.

#include <omp.h>

#include <map>

#include "core/dualop_impls.hpp"
#include "core/dualop_registry.hpp"
#include "util/omp_guard.hpp"
#include "gpu/blas.hpp"
#include "gpu/kernels.hpp"
#include "gpu/sparse.hpp"
#include "la/blas_dense.hpp"
#include "la/blas_sparse.hpp"
#include "sparse/simplicial_cholesky.hpp"
#include "sparse/supernodal_cholesky.hpp"

namespace feti::core {

namespace {

la::Csr permute_columns(const la::Csr& b, const std::vector<idx>& perm) {
  const std::vector<idx> iperm = la::invert_permutation(perm);
  std::vector<la::Triplet> t;
  t.reserve(static_cast<std::size_t>(b.nnz()));
  for (idx r = 0; r < b.nrows(); ++r)
    for (idx k = b.row_begin(r); k < b.row_end(r); ++k)
      t.push_back({r, iperm[b.col(k)], b.val(k)});
  return la::Csr::from_triplets(b.nrows(), b.ncols(), std::move(t));
}

/// Per-subdomain device dual vectors + cluster vectors + maps, and the two
/// scatter/gather application strategies of Section IV-C.
class GpuDualVectors {
 public:
  void prepare(gpu::Device& dev, gpu::Stream& s,
               const decomp::FetiProblem& p) {
    dev_ = &dev;
    const idx nsub = p.num_subdomains();
    subs_.resize(static_cast<std::size_t>(nsub));
    host_lam_.resize(subs_.size());
    host_q_.resize(subs_.size());
    for (idx i = 0; i < nsub; ++i) {
      const idx m = p.sub[i].num_local_lambdas();
      subs_[i].n = m;
      subs_[i].lam = dev.alloc_n<double>(static_cast<std::size_t>(m));
      subs_[i].q = dev.alloc_n<double>(static_cast<std::size_t>(m));
      subs_[i].map = gpu::upload_array(dev, s, p.sub[i].lm_l2c);
      host_lam_[i].resize(static_cast<std::size_t>(m));
      host_q_[i].resize(static_cast<std::size_t>(m));
    }
    d_x_ = dev.alloc_n<double>(static_cast<std::size_t>(p.num_lambdas));
    d_y_ = dev.alloc_n<double>(static_cast<std::size_t>(p.num_lambdas));
    nlambda_ = p.num_lambdas;
    s.synchronize();
  }

  ~GpuDualVectors() {
    if (dev_ == nullptr) return;
    for (auto& sv : subs_) {
      dev_->free(sv.lam);
      dev_->free(sv.q);
      dev_->free(const_cast<idx*>(sv.map));
    }
    dev_->free(d_x_);
    dev_->free(d_y_);
  }

  struct SubVec {
    double* lam = nullptr;
    double* q = nullptr;
    const idx* map = nullptr;
    idx n = 0;
  };

  /// GPU scatter/gather: one H2D copy + a single scatter kernel, the
  /// per-subdomain kernels, a single gather kernel + one D2H copy.
  template <typename SubmitLocal>
  void apply_sg_gpu(gpu::Stream& main, std::vector<gpu::Stream>& streams,
                    const double* x, double* y, SubmitLocal&& submit_local) {
    main.memcpy_h2d(d_x_, x, static_cast<std::size_t>(nlambda_) *
                                 sizeof(double));
    std::vector<gpu::kernels::DualMap> scatter_jobs;
    scatter_jobs.reserve(subs_.size());
    for (auto& sv : subs_) scatter_jobs.push_back({sv.map, sv.n, sv.lam});
    gpu::kernels::scatter_batch(main, d_x_, std::move(scatter_jobs));
    gpu::Event scattered = main.record();

    const std::size_t nstreams = streams.size();
    std::vector<bool> used(nstreams, false);
    for (std::size_t i = 0; i < subs_.size(); ++i) {
      gpu::Stream& st = streams[i % nstreams];
      if (!used[i % nstreams]) {
        st.wait(scattered);
        used[i % nstreams] = true;
      }
      submit_local(static_cast<idx>(i), st, subs_[i].lam, subs_[i].q);
    }
    for (std::size_t k = 0; k < nstreams; ++k)
      if (used[k]) main.wait(streams[k].record());

    std::vector<gpu::kernels::DualMap> gather_jobs;
    gather_jobs.reserve(subs_.size());
    for (auto& sv : subs_) gather_jobs.push_back({sv.map, sv.n, sv.q});
    gpu::kernels::gather_batch(main, d_y_, nlambda_, std::move(gather_jobs));
    main.memcpy_d2h(y, d_y_, static_cast<std::size_t>(nlambda_) *
                                 sizeof(double));
    main.synchronize();
  }

  /// CPU scatter/gather: per-subdomain H2D/D2H copies around each kernel —
  /// more submissions (overhead) but more copy/compute concurrency.
  template <typename SubmitLocal>
  void apply_sg_cpu(std::vector<gpu::Stream>& streams,
                    const decomp::FetiProblem& p, const double* x, double* y,
                    SubmitLocal&& submit_local) {
    const std::size_t nstreams = streams.size();
    for (std::size_t i = 0; i < subs_.size(); ++i) {
      const auto& map = p.sub[static_cast<idx>(i)].lm_l2c;
      for (std::size_t k = 0; k < map.size(); ++k)
        host_lam_[i][k] = x[map[k]];
      gpu::Stream& st = streams[i % nstreams];
      st.memcpy_h2d(subs_[i].lam, host_lam_[i].data(),
                    host_lam_[i].size() * sizeof(double));
      submit_local(static_cast<idx>(i), st, subs_[i].lam, subs_[i].q);
      st.memcpy_d2h(host_q_[i].data(), subs_[i].q,
                    host_q_[i].size() * sizeof(double));
    }
    for (auto& st : streams) st.synchronize();
    std::fill_n(y, nlambda_, 0.0);
    for (std::size_t i = 0; i < subs_.size(); ++i) {
      const auto& map = p.sub[static_cast<idx>(i)].lm_l2c;
      for (std::size_t k = 0; k < map.size(); ++k)
        y[map[k]] += host_q_[i][k];
    }
  }

 private:
  gpu::Device* dev_ = nullptr;
  std::vector<SubVec> subs_;
  std::vector<std::vector<double>> host_lam_, host_q_;
  double* d_x_ = nullptr;
  double* d_y_ = nullptr;
  idx nlambda_ = 0;
};

int clamp_streams(int requested) {
  return std::max(1, std::min(requested, 32));
}

// ---------------------------------------------------------------------------
// Explicit GPU (the contribution)
// ---------------------------------------------------------------------------

class ExplicitGpuDualOp final : public DualOperator {
 public:
  ExplicitGpuDualOp(const decomp::FetiProblem& p, gpu::sparse::Api api,
                    const ExplicitGpuOptions& opt,
                    sparse::OrderingKind ordering, gpu::Device& dev)
      : DualOperator(p), api_(api), opt_(opt), ordering_(ordering),
        dev_(dev) {}

  ~ExplicitGpuDualOp() override {
    dev_.synchronize();
    for (auto& b : bperm_dev_) gpu::free_csr(dev_, b);
    for (auto& f : factor_dev_) gpu::free_csr(dev_, f);
    // packed_ stays empty if prepare() failed before allocate_f().
    for (std::size_t s = 0; s < f_.size(); ++s)
      if (s >= packed_.size() || !packed_[s]) gpu::free_dense(dev_, f_[s]);
    for (double* buf : pack_buffers_) dev_.free(buf);
  }

  void prepare() override {
    ScopedTimer t(timings_, "prepare");
    const idx nsub = p_.num_subdomains();
    const int nstreams = clamp_streams(opt_.streams);
    main_stream_ = dev_.create_stream();
    streams_.clear();
    for (int i = 0; i < nstreams; ++i) streams_.push_back(dev_.create_stream());

    solvers_.resize(static_cast<std::size_t>(nsub));
    bperm_host_.resize(solvers_.size());
    bperm_dev_.resize(solvers_.size());
    factor_dev_.resize(solvers_.size());
    fwd_plan_.resize(solvers_.size());
    bwd_plan_.resize(solvers_.size());
    f_.resize(solvers_.size());

    const bool need_dense_factor =
        opt_.fwd_storage == FactorStorage::Dense ||
        (opt_.path == Path::Trsm && opt_.bwd_storage == FactorStorage::Dense);

    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx s = 0; s < nsub; ++s) {
      guard.run([&, s] {
        const auto& fs = p_.sub[s];
        gpu::Stream st = streams_[static_cast<std::size_t>(s) % streams_.size()];
        // Symbolic factorization on the CPU.
        solvers_[s] = std::make_unique<sparse::SimplicialCholesky>();
        solvers_[s]->analyze(fs.k_reg, ordering_);
        // Constant data to the device: the (column-permuted) gluing matrix
        // and the factor structure.
        bperm_host_[s] = permute_columns(fs.b, solvers_[s]->permutation());
        bperm_dev_[s] = gpu::upload_csr(dev_, st, bperm_host_[s]);
        const la::Csr& u = solvers_[s]->factor_upper_structure();
        if (need_dense_factor) factor_dev_[s] = gpu::upload_csr(dev_, st, u);
        const idx m = fs.num_local_lambdas();
        if (opt_.fwd_storage == FactorStorage::Sparse)
          fwd_plan_[s] = gpu::sparse::SpTrsmPlan(
              dev_, st, api_, u, opt_.fwd_order, /*forward=*/true,
              opt_.rhs_order, m);
        if (opt_.path == Path::Trsm &&
            opt_.bwd_storage == FactorStorage::Sparse)
          bwd_plan_[s] = gpu::sparse::SpTrsmPlan(
              dev_, st, api_, u, opt_.bwd_order, /*forward=*/false,
              opt_.rhs_order, m);
      });
    }
    guard.rethrow();
    allocate_f();
    vectors_.prepare(dev_, main_stream_, p_);
    dev_.synchronize();
    // Remaining device memory feeds the temporary-buffer pool (Sec. IV-A).
    dev_.ensure_temp_pool();
  }

  void update_values() override {
    ScopedTimer t(timings_, "update_values");
    const idx nsub = p_.num_subdomains();
    auto& temp = dev_.temp();
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx s = 0; s < nsub; ++s) {
      guard.run([&, s] {
        const auto& fs = p_.sub[s];
        gpu::Stream st = streams_[static_cast<std::size_t>(s) % streams_.size()];
        const idx n = fs.ndof();
        const idx m = fs.num_local_lambdas();

        // Numeric factorization on the CPU; overlaps with the GPU work of
        // previously submitted subdomains.
        solvers_[s]->factorize(fs.k_reg);
        const la::Csr& u = solvers_[s]->factor_upper();
        if (fwd_plan_[s].valid()) fwd_plan_[s].update_values(st, u);
        if (bwd_plan_[s].valid()) bwd_plan_[s].update_values(st, u);
        if (factor_dev_[s].vals != nullptr)
          gpu::update_csr_values(st, factor_dev_[s], u);

        // Temporary buffers for this subdomain (blocking pool allocator).
        auto* x_buf = static_cast<double*>(
            temp.alloc(sizeof(double) * static_cast<std::size_t>(n) * m));
        gpu::DeviceDense x{x_buf, n, m,
                           opt_.rhs_order == la::Layout::RowMajor ? m : n,
                           opt_.rhs_order};
        double* dense_fwd = nullptr;
        double* dense_bwd = nullptr;
        void* ws_fwd = nullptr;
        void* ws_bwd = nullptr;

        // Dense RHS X = (B̃ᵢ P^T)^T, converted on the device.
        gpu::sparse::csr_to_dense_transposed(st, bperm_dev_[s], x);

        // Forward solve L X = X.
        if (opt_.fwd_storage == FactorStorage::Sparse) {
          const std::size_t wb = fwd_plan_[s].workspace_bytes(m);
          if (wb > 0) ws_fwd = temp.alloc(wb);
          fwd_plan_[s].solve(st, x, ws_fwd);
        } else {
          dense_fwd = static_cast<double*>(
              temp.alloc(sizeof(double) * static_cast<std::size_t>(n) * n));
          gpu::DeviceDense df{dense_fwd, n, n, n, opt_.fwd_order};
          gpu::sparse::csr_to_dense(st, factor_dev_[s], df);
          gpu::blas::trsm(st, la::Uplo::Upper, la::Trans::Yes, df, x);
        }

        if (opt_.path == Path::Syrk) {
          // F̃ᵢ = X^T X; the stored triangle is per-subdomain when triangle
          // packing is active (footnote 1).
          gpu::blas::syrk(st, uplo_[s], la::Trans::Yes, 1.0, x, 0.0, f_[s]);
        } else {
          // Backward solve U Y = X, then F̃ᵢ = B̃ᵢ Y (SpMM).
          if (opt_.bwd_storage == FactorStorage::Sparse) {
            const std::size_t wb = bwd_plan_[s].workspace_bytes(m);
            if (wb > 0) ws_bwd = temp.alloc(wb);
            bwd_plan_[s].solve(st, x, ws_bwd);
          } else {
            if (opt_.fwd_storage == FactorStorage::Dense &&
                opt_.bwd_order == opt_.fwd_order) {
              // Reuse the forward dense factor.
              gpu::DeviceDense df{dense_fwd, n, n, n, opt_.bwd_order};
              gpu::blas::trsm(st, la::Uplo::Upper, la::Trans::No, df, x);
            } else {
              dense_bwd = static_cast<double*>(temp.alloc(
                  sizeof(double) * static_cast<std::size_t>(n) * n));
              gpu::DeviceDense df{dense_bwd, n, n, n, opt_.bwd_order};
              gpu::sparse::csr_to_dense(st, factor_dev_[s], df);
              gpu::blas::trsm(st, la::Uplo::Upper, la::Trans::No, df, x);
            }
          }
          gpu::sparse::spmm(st, 1.0, bperm_dev_[s], la::Trans::No, x, 0.0,
                            f_[s]);
        }

        // Stream-ordered release of the temporaries: they are freed once the
        // kernels of this subdomain have executed.
        st.submit([&temp, x_buf, dense_fwd, dense_bwd, ws_fwd, ws_bwd] {
          temp.free(x_buf);
          if (dense_fwd != nullptr) temp.free(dense_fwd);
          if (dense_bwd != nullptr) temp.free(dense_bwd);
          if (ws_fwd != nullptr) temp.free(ws_fwd);
          if (ws_bwd != nullptr) temp.free(ws_bwd);
        });
      });
    }
    guard.rethrow();
    dev_.synchronize();
  }

  void apply_one(const double* x, double* y) override {
    const bool symmetric = opt_.path == Path::Syrk;
    auto submit_local = [this, symmetric](idx s, gpu::Stream& st,
                                          const double* lam, double* q) {
      if (symmetric)
        gpu::blas::symv(st, uplo_[s], 1.0, f_[s], lam, 0.0, q);
      else
        gpu::blas::gemv(st, 1.0, f_[s], la::Trans::No, lam, 0.0, q);
    };
    if (opt_.scatter_gather == SgLocation::Gpu)
      vectors_.apply_sg_gpu(main_stream_, streams_, x, y, submit_local);
    else
      vectors_.apply_sg_cpu(streams_, p_, x, y, submit_local);
  }

  void kplus_solve(idx sub, const double* b, double* x) const override {
    solvers_[sub]->solve(b, x);
  }

  [[nodiscard]] const char* name() const override {
    return api_ == gpu::sparse::Api::Legacy ? "expl legacy" : "expl modern";
  }

  /// Bytes of device memory held by the F̃ᵢ matrices (packing ablation).
  [[nodiscard]] std::size_t f_storage_bytes() const {
    std::size_t total = 0;
    for (std::size_t s = 0; s < f_.size(); ++s)
      if (!packed_[s]) total += f_[s].bytes();
    for (std::size_t i = 0; i < pack_buffers_.size(); ++i)
      total += pack_sizes_[i];
    return total;
  }

 private:
  /// Allocates the persistent F̃ᵢ buffers. With the SYRK path and
  /// symmetric_pack enabled, equally sized subdomains are paired and the
  /// upper triangle of one shares a (m+1)-leading-dimension allocation with
  /// the lower triangle of the other (paper footnote 1): A's (i,j), i<=j,
  /// lives at i + j(m+1), B's (i,j), i>=j, at 1 + i + j(m+1) — disjoint.
  void allocate_f() {
    const idx nsub = p_.num_subdomains();
    f_.resize(static_cast<std::size_t>(nsub));
    uplo_.assign(static_cast<std::size_t>(nsub), la::Uplo::Upper);
    packed_.assign(static_cast<std::size_t>(nsub), false);
    const bool pack = opt_.symmetric_pack && opt_.path == Path::Syrk;

    std::map<idx, std::vector<idx>> by_size;
    for (idx s = 0; s < nsub; ++s)
      by_size[p_.sub[s].num_local_lambdas()].push_back(s);

    for (auto& [m, subs] : by_size) {
      std::size_t i = 0;
      if (pack) {
        for (; i + 1 < subs.size(); i += 2) {
          const idx a = subs[i], b = subs[i + 1];
          const std::size_t bytes =
              sizeof(double) * static_cast<std::size_t>(m) * (m + 1);
          auto* buf = static_cast<double*>(dev_.alloc(bytes));
          pack_buffers_.push_back(buf);
          pack_sizes_.push_back(bytes);
          f_[a] = gpu::DeviceDense{buf, m, m, m + 1, la::Layout::ColMajor};
          f_[b] = gpu::DeviceDense{buf + 1, m, m, m + 1,
                                   la::Layout::ColMajor};
          uplo_[a] = la::Uplo::Upper;
          uplo_[b] = la::Uplo::Lower;
          packed_[a] = packed_[b] = true;
        }
      }
      for (; i < subs.size(); ++i)
        f_[subs[i]] = gpu::alloc_dense(dev_, m, m, la::Layout::ColMajor);
    }
  }

  gpu::sparse::Api api_;
  ExplicitGpuOptions opt_;
  sparse::OrderingKind ordering_;
  gpu::Device& dev_;
  gpu::Stream main_stream_;
  std::vector<gpu::Stream> streams_;
  std::vector<std::unique_ptr<sparse::SimplicialCholesky>> solvers_;
  std::vector<la::Csr> bperm_host_;
  std::vector<gpu::DeviceCsr> bperm_dev_;
  std::vector<gpu::DeviceCsr> factor_dev_;
  std::vector<gpu::sparse::SpTrsmPlan> fwd_plan_, bwd_plan_;
  std::vector<gpu::DeviceDense> f_;
  std::vector<la::Uplo> uplo_;
  std::vector<bool> packed_;
  std::vector<double*> pack_buffers_;
  std::vector<std::size_t> pack_sizes_;
  GpuDualVectors vectors_;
};

// ---------------------------------------------------------------------------
// Implicit GPU
// ---------------------------------------------------------------------------

class ImplicitGpuDualOp final : public DualOperator {
 public:
  ImplicitGpuDualOp(const decomp::FetiProblem& p, gpu::sparse::Api api,
                    sparse::OrderingKind ordering, gpu::Device& dev,
                    int streams)
      : DualOperator(p), api_(api), ordering_(ordering), dev_(dev),
        nstreams_(clamp_streams(streams)) {}

  ~ImplicitGpuDualOp() override {
    dev_.synchronize();
    for (auto& b : bperm_dev_) gpu::free_csr(dev_, b);
    for (auto* t : tmp_dev_) dev_.free(t);
  }

  void prepare() override {
    ScopedTimer t(timings_, "prepare");
    const idx nsub = p_.num_subdomains();
    main_stream_ = dev_.create_stream();
    streams_.clear();
    for (int i = 0; i < nstreams_; ++i)
      streams_.push_back(dev_.create_stream());
    solvers_.resize(static_cast<std::size_t>(nsub));
    bperm_host_.resize(solvers_.size());
    bperm_dev_.resize(solvers_.size());
    fwd_plan_.resize(solvers_.size());
    bwd_plan_.resize(solvers_.size());
    tmp_dev_.resize(solvers_.size());
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx s = 0; s < nsub; ++s) {
      guard.run([&, s] {
        const auto& fs = p_.sub[s];
        gpu::Stream st = streams_[static_cast<std::size_t>(s) % streams_.size()];
        solvers_[s] = std::make_unique<sparse::SimplicialCholesky>();
        solvers_[s]->analyze(fs.k_reg, ordering_);
        bperm_host_[s] = permute_columns(fs.b, solvers_[s]->permutation());
        bperm_dev_[s] = gpu::upload_csr(dev_, st, bperm_host_[s]);
        const la::Csr& u = solvers_[s]->factor_upper_structure();
        fwd_plan_[s] = gpu::sparse::SpTrsmPlan(dev_, st, api_, u,
                                               la::Layout::ColMajor,
                                               /*forward=*/true,
                                               la::Layout::ColMajor, 1);
        bwd_plan_[s] = gpu::sparse::SpTrsmPlan(dev_, st, api_, u,
                                               la::Layout::ColMajor,
                                               /*forward=*/false,
                                               la::Layout::ColMajor, 1);
        tmp_dev_[s] = dev_.alloc_n<double>(static_cast<std::size_t>(fs.ndof()));
      });
    }
    guard.rethrow();
    vectors_.prepare(dev_, main_stream_, p_);
    dev_.synchronize();
    dev_.ensure_temp_pool();
  }

  void update_values() override {
    // Implicit preprocessing = numeric factorization + factor copies.
    ScopedTimer t(timings_, "update_values");
    const idx nsub = p_.num_subdomains();
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx s = 0; s < nsub; ++s) {
      guard.run([&, s] {
        gpu::Stream st = streams_[static_cast<std::size_t>(s) % streams_.size()];
        solvers_[s]->factorize(p_.sub[s].k_reg);
        const la::Csr& u = solvers_[s]->factor_upper();
        fwd_plan_[s].update_values(st, u);
        bwd_plan_[s].update_values(st, u);
      });
    }
    guard.rethrow();
    dev_.synchronize();
  }

  void apply_one(const double* x, double* y) override {
    auto& temp = dev_.temp();
    auto submit_local = [this, &temp](idx s, gpu::Stream& st,
                                      const double* lam, double* q) {
      const idx n = p_.sub[s].ndof();
      gpu::DeviceCsr b = bperm_dev_[s];
      double* tvec = tmp_dev_[s];
      gpu::sparse::spmv(st, 1.0, b, la::Trans::Yes, lam, 0.0, tvec);
      gpu::DeviceDense tview{tvec, n, 1, n, la::Layout::ColMajor};
      void* ws_f = nullptr;
      void* ws_b = nullptr;
      const std::size_t wf = fwd_plan_[s].workspace_bytes(1);
      const std::size_t wb = bwd_plan_[s].workspace_bytes(1);
      if (wf > 0) ws_f = temp.alloc(wf);
      fwd_plan_[s].solve(st, tview, ws_f);
      if (wb > 0) ws_b = temp.alloc(wb);
      bwd_plan_[s].solve(st, tview, ws_b);
      gpu::sparse::spmv(st, 1.0, b, la::Trans::No, tvec, 0.0, q);
      if (ws_f != nullptr || ws_b != nullptr)
        st.submit([&temp, ws_f, ws_b] {
          if (ws_f != nullptr) temp.free(ws_f);
          if (ws_b != nullptr) temp.free(ws_b);
        });
    };
    vectors_.apply_sg_gpu(main_stream_, streams_, x, y, submit_local);
  }

  void kplus_solve(idx sub, const double* b, double* x) const override {
    solvers_[sub]->solve(b, x);
  }

  [[nodiscard]] const char* name() const override {
    return api_ == gpu::sparse::Api::Legacy ? "impl legacy" : "impl modern";
  }

 private:
  gpu::sparse::Api api_;
  sparse::OrderingKind ordering_;
  gpu::Device& dev_;
  int nstreams_;
  gpu::Stream main_stream_;
  std::vector<gpu::Stream> streams_;
  std::vector<std::unique_ptr<sparse::SimplicialCholesky>> solvers_;
  std::vector<la::Csr> bperm_host_;
  std::vector<gpu::DeviceCsr> bperm_dev_;
  std::vector<gpu::sparse::SpTrsmPlan> fwd_plan_, bwd_plan_;
  std::vector<double*> tmp_dev_;
  GpuDualVectors vectors_;
};

// ---------------------------------------------------------------------------
// Hybrid (assembly on CPU via Schur, application on GPU)
// ---------------------------------------------------------------------------

class HybridDualOp final : public DualOperator {
 public:
  HybridDualOp(const decomp::FetiProblem& p, const ExplicitGpuOptions& opt,
               sparse::OrderingKind ordering, gpu::Device& dev)
      : DualOperator(p), opt_(opt), ordering_(ordering), dev_(dev) {}

  ~HybridDualOp() override {
    dev_.synchronize();
    for (auto& f : f_dev_) gpu::free_dense(dev_, f);
  }

  void prepare() override {
    ScopedTimer t(timings_, "prepare");
    const idx nsub = p_.num_subdomains();
    main_stream_ = dev_.create_stream();
    streams_.clear();
    for (int i = 0; i < clamp_streams(opt_.streams); ++i)
      streams_.push_back(dev_.create_stream());
    solvers_.resize(static_cast<std::size_t>(nsub));
    f_host_.resize(solvers_.size());
    f_dev_.resize(solvers_.size());
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx s = 0; s < nsub; ++s) {
      guard.run([&, s] {
        const auto& fs = p_.sub[s];
        solvers_[s] = std::make_unique<sparse::SupernodalCholesky>();
        solvers_[s]->analyze_schur(fs.k_reg, fs.b, ordering_);
        const idx m = fs.num_local_lambdas();
        f_host_[s] = la::DenseMatrix(m, m, la::Layout::ColMajor);
        f_dev_[s] = gpu::alloc_dense(dev_, m, m, la::Layout::ColMajor);
      });
    }
    guard.rethrow();
    vectors_.prepare(dev_, main_stream_, p_);
    dev_.synchronize();
    dev_.ensure_temp_pool();
  }

  void update_values() override {
    ScopedTimer t(timings_, "update_values");
    const idx nsub = p_.num_subdomains();
    OmpExceptionGuard guard;
#pragma omp parallel for schedule(dynamic)
    for (idx s = 0; s < nsub; ++s) {
      guard.run([&, s] {
        const auto& fs = p_.sub[s];
        gpu::Stream st = streams_[static_cast<std::size_t>(s) % streams_.size()];
        solvers_[s]->factorize_schur(fs.k_reg, fs.b, f_host_[s].view(),
                                     la::Uplo::Upper);
        st.memcpy_h2d(f_dev_[s].data, f_host_[s].data(),
                      f_host_[s].size() * sizeof(double));
      });
    }
    guard.rethrow();
    dev_.synchronize();
  }

  void apply_one(const double* x, double* y) override {
    auto submit_local = [this](idx s, gpu::Stream& st, const double* lam,
                               double* q) {
      gpu::blas::symv(st, la::Uplo::Upper, 1.0, f_dev_[s], lam, 0.0, q);
    };
    if (opt_.scatter_gather == SgLocation::Gpu)
      vectors_.apply_sg_gpu(main_stream_, streams_, x, y, submit_local);
    else
      vectors_.apply_sg_cpu(streams_, p_, x, y, submit_local);
  }

  void kplus_solve(idx sub, const double* b, double* x) const override {
    solvers_[sub]->solve(b, x);
  }

  [[nodiscard]] const char* name() const override { return "expl hybrid"; }

 private:
  ExplicitGpuOptions opt_;
  sparse::OrderingKind ordering_;
  gpu::Device& dev_;
  gpu::Stream main_stream_;
  std::vector<gpu::Stream> streams_;
  std::vector<std::unique_ptr<sparse::SupernodalCholesky>> solvers_;
  std::vector<la::DenseMatrix> f_host_;
  std::vector<gpu::DeviceDense> f_dev_;
  GpuDualVectors vectors_;
};

}  // namespace

std::unique_ptr<DualOperator> make_implicit_gpu(
    const decomp::FetiProblem& p, gpu::sparse::Api api,
    sparse::OrderingKind ordering, gpu::Device& device, int streams) {
  return std::make_unique<ImplicitGpuDualOp>(p, api, ordering, device,
                                             streams);
}

std::unique_ptr<DualOperator> make_explicit_gpu(
    const decomp::FetiProblem& p, gpu::sparse::Api api,
    const ExplicitGpuOptions& options, sparse::OrderingKind ordering,
    gpu::Device& device) {
  return std::make_unique<ExplicitGpuDualOp>(p, api, options, ordering,
                                             device);
}

std::unique_ptr<DualOperator> make_hybrid(const decomp::FetiProblem& p,
                                          const ExplicitGpuOptions& options,
                                          sparse::OrderingKind ordering,
                                          gpu::Device& device) {
  return std::make_unique<HybridDualOp>(p, options, ordering, device);
}

void register_gpu_dual_operators(DualOperatorRegistry& registry) {
  using R = Representation;
  using D = ExecDevice;
  using B = sparse::Backend;
  using A = gpu::sparse::Api;
  const auto gpu_axes = [](R r, A api) {
    ApproachAxes a;
    a.repr = r;
    a.device = D::Gpu;
    a.backend = B::Simplicial;
    a.api = api;
    return a;
  };
  for (A api : {A::Legacy, A::Modern}) {
    const char* apiname = gpu::sparse::to_string(api);
    registry.add(
        {std::string("impl ") + apiname, gpu_axes(R::Implicit, api),
         std::string("implicit application on the GPU, ") + apiname +
             " sparse API, simplicial factors"},
        [api](const decomp::FetiProblem& p, const DualOpConfig& c,
              gpu::Device* dev) {
          return make_implicit_gpu(p, api, c.ordering, *dev, c.gpu.streams);
        });
    registry.add(
        {std::string("expl ") + apiname, gpu_axes(R::Explicit, api),
         std::string("explicit F̃ assembled on the GPU, ") + apiname +
             " sparse API"},
        [api](const decomp::FetiProblem& p, const DualOpConfig& c,
              gpu::Device* dev) {
          return make_explicit_gpu(p, api, c.gpu, c.ordering, *dev);
        });
  }
  ApproachAxes hybrid;
  hybrid.repr = R::Explicit;
  hybrid.device = D::Hybrid;
  hybrid.backend = B::Supernodal;
  registry.add(
      {"expl hybrid", hybrid,
       "explicit F̃ assembled on the CPU (Schur path), applied on the GPU"},
      [](const decomp::FetiProblem& p, const DualOpConfig& c,
         gpu::Device* dev) { return make_hybrid(p, c.gpu, c.ordering, *dev); });
}

}  // namespace feti::core
