#pragma once

// Virtual GPU runtime — the CUDA substitute used by this reproduction.
//
// No CUDA hardware is available in this environment, so this module
// reproduces the *execution model* the paper's implementation relies on
// (Section IV): asynchronous kernel submission into multiple in-order
// streams, cross-stream concurrency on a worker pool, events, asynchronous
// H2D/D2H copies, per-operation launch latency (the overhead the paper
// blames for small-subdomain behaviour), a bounded device memory with
// persistent allocations, and a blocking temporary-memory pool allocator
// (Section IV-A). Kernels execute on host threads; all relative effects in
// the benchmarks come from real algorithmic differences, not faked timings.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "util/thread_pool.hpp"

namespace feti::gpu {

/// Process-wide PCIe traffic instrumentation. Every Stream::memcpy_h2d /
/// memcpy_d2h counts its bytes here at submission time — the single choke
/// point all upload helpers (gpu/data.cpp), the dual-vector staging paths,
/// the preconditioner staging, and the sharded operators' per-shard devices
/// funnel through — so a transfer-count gate sees the whole process without
/// per-call-site bookkeeping. Counters accumulate forever; callers take
/// snapshot() deltas (concurrent solves on other threads pollute a delta,
/// which is why the benches/tests that gate on it run single-solver).
struct TransferCounters {
  std::atomic<std::uint64_t> h2d_bytes{0};
  std::atomic<std::uint64_t> d2h_bytes{0};
  std::atomic<std::uint64_t> h2d_calls{0};
  std::atomic<std::uint64_t> d2h_calls{0};

  /// Consistent-enough copy for before/after deltas.
  struct Snapshot {
    std::uint64_t h2d_bytes = 0;
    std::uint64_t d2h_bytes = 0;
    std::uint64_t h2d_calls = 0;
    std::uint64_t d2h_calls = 0;

    Snapshot operator-(const Snapshot& o) const {
      return {h2d_bytes - o.h2d_bytes, d2h_bytes - o.d2h_bytes,
              h2d_calls - o.h2d_calls, d2h_calls - o.d2h_calls};
    }
  };

  [[nodiscard]] Snapshot snapshot() const {
    return {h2d_bytes.load(std::memory_order_relaxed),
            d2h_bytes.load(std::memory_order_relaxed),
            h2d_calls.load(std::memory_order_relaxed),
            d2h_calls.load(std::memory_order_relaxed)};
  }

  void record_h2d(std::size_t bytes) {
    h2d_bytes.fetch_add(bytes, std::memory_order_relaxed);
    h2d_calls.fetch_add(1, std::memory_order_relaxed);
  }
  void record_d2h(std::size_t bytes) {
    d2h_bytes.fetch_add(bytes, std::memory_order_relaxed);
    d2h_calls.fetch_add(1, std::memory_order_relaxed);
  }

  /// The process-wide instance (all virtual devices share it, matching the
  /// single physical PCIe link the paper's measurements go through).
  static TransferCounters& global();
};

struct DeviceConfig {
  /// Worker threads emulating the device's execution resources.
  int worker_threads = 0;  ///< 0 = hardware concurrency
  /// Submission overhead per operation in microseconds (kernel launch
  /// latency model). The paper's small-subdomain overhead effects hinge on
  /// this being non-zero.
  double launch_latency_us = 4.0;
  /// Device memory capacity in bytes (A100: 40 GB; scaled default here).
  std::size_t memory_bytes = 2048ull << 20;
  /// Fraction of the capacity reserved for the temporary pool when it is
  /// initialized lazily via ensure_temp_pool() (long-running processes that
  /// create several solver instances share one device, so "all remaining
  /// memory" is only meaningful for single-solver runs).
  double temp_pool_fraction = 0.5;

  /// Reads FETI_VGPU_WORKERS / FETI_VGPU_LATENCY_US / FETI_VGPU_MEM_MB.
  static DeviceConfig from_env();
};

class Device;

/// Blocking pool allocator for temporary device buffers. First-fit
/// free-list; when the pool cannot satisfy a request, the calling thread
/// blocks until other threads release memory (paper Section IV-A).
class TempAllocator {
 public:
  TempAllocator() = default;

  /// Assigns the pool memory (called once by Device::init_temp_pool).
  void init(char* base, std::size_t bytes);

  /// Blocking allocation; throws if `bytes` exceeds the whole pool.
  void* alloc(std::size_t bytes);
  /// Throws std::invalid_argument for pointers outside the pool and for
  /// double frees (offsets that are not a live allocation).
  void free(void* p);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t in_use() const;
  /// Number of times an allocation had to wait (introspection/ablation).
  [[nodiscard]] long contention_count() const;

 private:
  struct Block {
    std::size_t offset;
    std::size_t size;
  };
  bool try_alloc_locked(std::size_t bytes, std::size_t& offset);

  char* base_ = nullptr;
  std::size_t capacity_ = 0;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Block> free_list_;
  std::deque<Block> used_;  // sorted by offset
  long contention_ = 0;
};

class Event;

/// In-order command stream. Cheap handle (shared state).
class Stream {
 public:
  Stream() = default;

  /// Submits an operation; returns immediately. Operations of one stream
  /// run strictly in order; different streams run concurrently.
  void submit(std::function<void()> op);

  /// Asynchronous copies (host<->device; both are host memory here, but the
  /// copy still runs as a stream-ordered operation).
  void memcpy_h2d(void* dst, const void* src, std::size_t bytes);
  void memcpy_d2h(void* dst, const void* src, std::size_t bytes);

  /// Blocks the calling (host) thread until the stream drains.
  void synchronize();

  /// Records an event after all currently submitted work.
  Event record();
  /// Makes this stream wait for `e` before running later submissions.
  void wait(const Event& e);

  [[nodiscard]] bool valid() const { return impl_ != nullptr; }

 private:
  friend class Device;
  struct Impl;
  explicit Stream(std::shared_ptr<Impl> impl) : impl_(std::move(impl)) {}
  std::shared_ptr<Impl> impl_;
};

/// Completion marker usable across streams.
class Event {
 public:
  Event();
  void wait() const;
  [[nodiscard]] bool query() const;

 private:
  friend class Stream;
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// The virtual device: worker pool + memory.
class Device {
 public:
  explicit Device(DeviceConfig cfg = DeviceConfig::from_env());
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const DeviceConfig& config() const { return cfg_; }

  Stream create_stream();
  /// Blocks until every stream created from this device drains.
  void synchronize();

  /// Persistent device allocation ("cudaMalloc"); throws std::bad_alloc
  /// when the device memory capacity is exceeded.
  void* alloc(std::size_t bytes);
  /// Throws std::invalid_argument when `p` is not a live allocation of
  /// this device (double free or foreign pointer).
  void free(void* p);
  template <typename T>
  T* alloc_n(std::size_t count) {
    return static_cast<T*>(alloc(count * sizeof(T)));
  }

  /// Dedicates all remaining device memory (minus `reserve`) to the
  /// temporary pool allocator. Call after persistent allocations are done
  /// (preparation phase).
  void init_temp_pool(std::size_t reserve = 0);
  /// Lazy variant: if the pool does not exist yet, reserves
  /// temp_pool_fraction of the capacity for it. Safe to call repeatedly.
  void ensure_temp_pool();
  [[nodiscard]] TempAllocator& temp();

  [[nodiscard]] std::size_t memory_used() const;
  [[nodiscard]] std::size_t memory_capacity() const {
    return cfg_.memory_bytes;
  }

  /// Process-wide default device (configured from the environment).
  /// Compatibility shim for leaf code only: operators, benches, and
  /// examples receive their resources through gpu::ExecutionContext
  /// (gpu/context.hpp) instead.
  static Device& default_device();

  // Internal plumbing used by Stream (public because Stream::Impl lives in
  // the implementation file).
  void pool_submit(std::function<void()> task);
  void launch_latency() const;

 private:

  DeviceConfig cfg_;
  std::unique_ptr<ThreadPool> pool_;
  mutable std::mutex mem_mutex_;
  std::size_t mem_used_ = 0;
  std::map<void*, std::size_t> allocations_;
  std::unique_ptr<char[]> temp_storage_;
  TempAllocator temp_;
  bool temp_ready_ = false;
  std::mutex streams_mutex_;
  std::vector<std::weak_ptr<Stream::Impl>> streams_;
};

}  // namespace feti::gpu
