// Tests of the preconditioner subsystem: the string-keyed registry and its
// 19-key grammar, the SPD/consistency matrix over every registered key
// (symmetric PSD apply, batched apply_many ≡ sequential applies, solution
// match against unpreconditioned PCPG), the scaling weights, the staged
// lifecycle (dirty tracking + cache stats), the heterogeneous checkerboard
// generator with the iteration-count reduction it is built to demonstrate,
// the workload-hint preconditioner recommendation, and the service-layer
// fingerprint separation of distinct preconditioner keys.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "util/rng.hpp"

#include "core/autotune.hpp"
#include "core/feti_solver.hpp"
#include "decomp/heterogeneous.hpp"
#include "precond/precond_registry.hpp"
#include "service/solve_job.hpp"

namespace feti::precond {
namespace {

using decomp::FetiProblem;
using fem::Physics;
using mesh::ElementOrder;

gpu::ExecutionContext& test_context() {
  static gpu::ExecutionContext ctx([] {
    gpu::DeviceConfig cfg;
    cfg.worker_threads = 4;
    cfg.launch_latency_us = 0.0;
    cfg.memory_bytes = 512ull << 20;
    return cfg;
  }());
  return ctx;
}

FetiProblem heat2d_problem(idx cells = 6, idx splits = 2) {
  mesh::Mesh m = mesh::make_grid_2d(cells, cells, ElementOrder::Linear);
  auto dec = mesh::decompose_2d(m, cells, cells, splits, splits);
  return decomp::build_feti_problem(dec, Physics::HeatTransfer);
}

FetiProblem elastic2d_problem(idx cells = 8, idx splits = 2) {
  mesh::Mesh m = mesh::make_grid_2d(cells, cells, ElementOrder::Linear);
  auto dec = mesh::decompose_2d(m, cells, cells, splits, splits);
  return decomp::build_feti_problem(dec, Physics::LinearElasticity);
}

/// Checkerboard heterogeneous heat problem with the given contrast.
FetiProblem checkerboard_problem(idx cells, idx splits, double jump) {
  mesh::Mesh m = mesh::make_grid_2d(cells, cells, ElementOrder::Linear);
  auto dec = mesh::decompose_2d(m, cells, cells, splits, splits);
  return decomp::build_feti_problem(
      dec, Physics::HeatTransfer,
      decomp::checkerboard_materials_2d(splits, splits, jump));
}

std::unique_ptr<Preconditioner> make_ready(const FetiProblem& p,
                                           const std::string& key) {
  auto m = make_preconditioner(
      p, key,
      PreconditionerRegistry::instance().uses_gpu(key) ? &test_context()
                                                       : nullptr);
  m->prepare();
  m->update_values();
  return m;
}

/// M⁻¹ as a dense matrix, assembled column-by-column via the batched apply.
la::DenseMatrix dense_apply(Preconditioner& m, idx n) {
  std::vector<double> e(static_cast<std::size_t>(n) *
                        static_cast<std::size_t>(n), 0.0);
  for (idx i = 0; i < n; ++i) e[static_cast<std::size_t>(i) * n + i] = 1.0;
  std::vector<double> out(e.size());
  m.apply(e.data(), out.data(), n);
  la::DenseMatrix d(n, n);
  // apply() treats columns as contiguous dual vectors; out column j holds
  // M⁻¹ e_j.
  for (idx j = 0; j < n; ++j)
    for (idx i = 0; i < n; ++i)
      d.at(i, j) = out[static_cast<std::size_t>(j) * n + i];
  return d;
}

// ---------------------------------------------------------------------------
// Registry contents and key grammar
// ---------------------------------------------------------------------------

TEST(PrecondRegistry, ListsAllNineteenKeys) {
  std::vector<std::string> expected = {"none"};
  for (const char* kind : {"lumped", "superlumped", "dirichlet"})
    for (const char* scaling : {"", " multiplicity", " stiffness"})
      for (const char* gpu : {"", " gpu"})
        expected.push_back(std::string(kind) + scaling + gpu);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(PreconditionerRegistry::instance().keys(), expected);
  EXPECT_EQ(PreconditionerRegistry::instance().size(), 19u);
}

TEST(PrecondRegistry, KeyMetadataAndNormalization) {
  auto& registry = PreconditionerRegistry::instance();
  EXPECT_EQ(normalize_key(""), "none");
  EXPECT_EQ(normalize_key("  dirichlet   stiffness  gpu "),
            "dirichlet stiffness gpu");
  EXPECT_FALSE(registry.uses_gpu("dirichlet stiffness"));
  EXPECT_TRUE(registry.uses_gpu("dirichlet stiffness gpu"));
  EXPECT_FALSE(registry.contains("dirichlet quantum"));
  const PreconditionerInfo info = registry.info("lumped multiplicity gpu");
  EXPECT_EQ(info.kind, Kind::Lumped);
  EXPECT_EQ(info.scaling, Scaling::Multiplicity);
  EXPECT_TRUE(info.gpu);
  // GPU keys are unavailable without an execution context...
  EXPECT_FALSE(registry.available("lumped gpu", nullptr));
  EXPECT_THROW(registry.create("lumped gpu", heat2d_problem(), nullptr),
               std::invalid_argument);
  // ... and unknown keys never resolve.
  EXPECT_THROW(registry.create("dirichlet quantum", heat2d_problem(), nullptr),
               std::invalid_argument);
}

TEST(PrecondRegistry, FetiStepResultReportsTheServingKey) {
  FetiProblem p = heat2d_problem();
  core::FetiSolverOptions opts;
  opts.dualop.approach = core::Approach::ImplMkl;
  opts.pcpg.preconditioner = "lumped  multiplicity";  // unnormalized spelling
  core::FetiSolver solver(p, opts, nullptr);
  solver.prepare();
  const core::FetiStepResult res = solver.solve_step();
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.preconditioner, "lumped multiplicity");
  EXPECT_GT(res.pcpg_iterations, 0);
}

// ---------------------------------------------------------------------------
// Consistency matrix: every key is symmetric PSD and batch-consistent
// ---------------------------------------------------------------------------

class PrecondKeyParam : public ::testing::TestWithParam<std::string> {};

TEST_P(PrecondKeyParam, ApplyIsSymmetricPsd) {
  const std::string key = GetParam();
  FetiProblem p = elastic2d_problem();
  auto m = make_ready(p, key);
  EXPECT_EQ(std::string(m->key()), key);
  const idx n = p.num_lambdas;
  const la::DenseMatrix d = dense_apply(*m, n);
  double scale = 0.0;
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < n; ++j) scale = std::max(scale, std::fabs(d.at(i, j)));
  scale = std::max(scale, 1e-30);
  for (idx i = 0; i < n; ++i)
    for (idx j = i + 1; j < n; ++j)
      EXPECT_NEAR(d.at(i, j), d.at(j, i), 1e-10 * scale)
          << key << " (" << i << "," << j << ")";
  // PSD via quadratic forms on a few deterministic probe vectors.
  Rng rng(11);
  std::vector<double> x(static_cast<std::size_t>(n)),
      y(static_cast<std::size_t>(n));
  for (int probe = 0; probe < 8; ++probe) {
    for (auto& v : x) v = rng.uniform(-1.0, 1.0);
    m->apply(x.data(), y.data());
    double q = 0.0, nx = 0.0;
    for (idx i = 0; i < n; ++i) {
      q += x[i] * y[i];
      nx += x[i] * x[i];
    }
    EXPECT_GE(q, -1e-10 * scale * nx) << key;
  }
}

TEST_P(PrecondKeyParam, BatchedApplyMatchesSequential) {
  const std::string key = GetParam();
  FetiProblem p = heat2d_problem();
  auto m = make_ready(p, key);
  const idx n = p.num_lambdas;
  const idx nrhs = 5;
  Rng rng(23);
  std::vector<double> x(static_cast<std::size_t>(n) * nrhs);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  std::vector<double> batched(x.size()), single(x.size());
  m->apply(x.data(), batched.data(), nrhs);
  for (idx j = 0; j < nrhs; ++j)
    m->apply(x.data() + static_cast<std::size_t>(j) * n,
             single.data() + static_cast<std::size_t>(j) * n);
  double scale = 0.0;
  for (double v : single) scale = std::max(scale, std::fabs(v));
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(batched[i], single[i], 1e-11 * std::max(1.0, scale))
        << key << " entry " << i;
  // Every built-in serves batches with a real block implementation.
  EXPECT_EQ(m->loop_fallback_count(), 0) << key;
}

TEST_P(PrecondKeyParam, SolutionMatchesUnpreconditionedPcpg) {
  const std::string key = GetParam();
  FetiProblem p = elastic2d_problem();
  auto solve = [&](const std::string& precond_key,
                   const std::string& op_key) {
    core::FetiSolverOptions opts;
    opts.dualop.key = op_key;
    opts.pcpg.rel_tolerance = 1e-10;
    opts.pcpg.max_iterations = 2000;
    opts.pcpg.preconditioner = precond_key;
    core::FetiSolver solver(
        p, opts, PreconditionerRegistry::instance().uses_gpu(precond_key)
                     ? &test_context()
                     : nullptr);
    solver.prepare();
    return solver.solve_step();
  };
  for (const char* op_key : {"impl mkl", "expl mkl"}) {
    const core::FetiStepResult ref = solve("none", op_key);
    ASSERT_TRUE(ref.converged) << op_key;
    const core::FetiStepResult res = solve(key, op_key);
    ASSERT_TRUE(res.converged) << key << " / " << op_key;
    double scale = 0.0;
    for (double v : ref.u) scale = std::max(scale, std::fabs(v));
    ASSERT_EQ(res.u.size(), ref.u.size());
    for (std::size_t i = 0; i < ref.u.size(); ++i)
      EXPECT_NEAR(res.u[i], ref.u[i], 1e-6 * std::max(1.0, scale))
          << key << " / " << op_key << " dof " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKeys, PrecondKeyParam,
    ::testing::ValuesIn(PreconditionerRegistry::instance().keys()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), ' ', '_');
      return name;
    });

// ---------------------------------------------------------------------------
// Scaling weights
// ---------------------------------------------------------------------------

TEST(PrecondScaling, MultiplicityWeightsAreInverseIncidenceCounts) {
  FetiProblem p = heat2d_problem();
  const auto w = compute_scaling_weights(p, Scaling::Multiplicity);
  ASSERT_EQ(w.size(), p.sub.size());
  // Recompute incidence counts directly and compare.
  std::vector<int> count(static_cast<std::size_t>(p.num_lambdas), 0);
  for (const auto& fs : p.sub)
    for (idx c : fs.lm_l2c) ++count[static_cast<std::size_t>(c)];
  for (std::size_t s = 0; s < p.sub.size(); ++s) {
    ASSERT_EQ(w[s].size(), p.sub[s].lm_l2c.size());
    for (std::size_t r = 0; r < w[s].size(); ++r) {
      const int k = count[static_cast<std::size_t>(p.sub[s].lm_l2c[r])];
      EXPECT_NEAR(w[s][r], 1.0 / std::max(1, k), 1e-15);
    }
  }
  EXPECT_TRUE(compute_scaling_weights(p, Scaling::None).empty());
}

TEST(PrecondScaling, StiffnessWeightsOfSharedRowsSumToOne) {
  // On an interface multiplier shared by two subdomains the two stiffness
  // weights are complementary: w_a = κ_b / (κ_a + κ_b), w_b = 1 - w_a.
  // Single-incidence rows (the Total FETI Dirichlet rows) keep weight 1.
  FetiProblem p = checkerboard_problem(8, 2, 1e4);
  const auto w = compute_scaling_weights(p, Scaling::Stiffness);
  std::vector<int> count(static_cast<std::size_t>(p.num_lambdas), 0);
  std::vector<double> sum(static_cast<std::size_t>(p.num_lambdas), 0.0);
  for (std::size_t s = 0; s < p.sub.size(); ++s)
    for (std::size_t r = 0; r < w[s].size(); ++r) {
      const auto c = static_cast<std::size_t>(p.sub[s].lm_l2c[r]);
      ++count[c];
      sum[c] += w[s][r];
      EXPECT_GE(w[s][r], 0.0);
      EXPECT_LE(w[s][r], 1.0 + 1e-12);
    }
  for (std::size_t c = 0; c < sum.size(); ++c) {
    if (count[c] == 1) {
      EXPECT_NEAR(sum[c], 1.0, 1e-12) << "Dirichlet row " << c;
    } else if (count[c] > 1) {
      EXPECT_NEAR(sum[c], 1.0, 1e-9) << "interface row " << c;
    }
  }
}

// ---------------------------------------------------------------------------
// Heterogeneous checkerboard + the iteration-count reduction
// ---------------------------------------------------------------------------

TEST(Heterogeneous, CheckerboardLayoutMatchesSubdomainOrder) {
  const auto mats = decomp::checkerboard_materials_2d(3, 2, 100.0);
  ASSERT_EQ(mats.size(), 6u);
  // s = q*sx + p: parities 0,1,0 / 1,0,1.
  const double hard = 100.0;
  EXPECT_EQ(mats[0].conductivity, 1.0);
  EXPECT_EQ(mats[1].conductivity, hard);
  EXPECT_EQ(mats[2].conductivity, 1.0);
  EXPECT_EQ(mats[3].conductivity, hard);
  EXPECT_EQ(mats[4].conductivity, 1.0);
  EXPECT_EQ(mats[5].conductivity, hard);
  EXPECT_NEAR(decomp::coefficient_jump(mats), 100.0, 1e-12);

  const auto m3 = decomp::checkerboard_materials_3d(2, 2, 2, 10.0);
  ASSERT_EQ(m3.size(), 8u);
  for (idx r = 0; r < 2; ++r)
    for (idx q = 0; q < 2; ++q)
      for (idx px = 0; px < 2; ++px)
        EXPECT_EQ(m3[static_cast<std::size_t>((r * 2 + q) * 2 + px)]
                      .conductivity,
                  (px + q + r) % 2 == 1 ? 10.0 : 1.0);
  EXPECT_EQ(decomp::coefficient_jump({}), 1.0);
}

TEST(Heterogeneous, DirichletStiffnessReducesIterationsOnCheckerboard) {
  FetiProblem p = checkerboard_problem(12, 3, 1e4);
  auto iterations = [&](const std::string& key) {
    core::FetiSolverOptions opts;
    opts.dualop.approach = core::Approach::ImplMkl;
    opts.pcpg.rel_tolerance = 1e-9;
    opts.pcpg.max_iterations = 2000;
    opts.pcpg.preconditioner = key;
    core::FetiSolver solver(p, opts, nullptr);
    solver.prepare();
    const core::FetiStepResult res = solver.solve_step();
    EXPECT_TRUE(res.converged) << key;
    return res.pcpg_iterations;
  };
  const int none = iterations("none");
  const int dirichlet = iterations("dirichlet stiffness");
  EXPECT_LT(dirichlet, none)
      << "dirichlet stiffness=" << dirichlet << " none=" << none;
}

// ---------------------------------------------------------------------------
// Lifecycle: dirty tracking, cache stats, Pcpg fallback contract
// ---------------------------------------------------------------------------

TEST(PrecondLifecycle, DirtyTrackingRefreshesOnlyMarkedSubdomains) {
  FetiProblem p = heat2d_problem(8, 2);
  auto m = make_ready(p, "dirichlet");
  core::CacheStats s0 = m->cache_stats();
  EXPECT_EQ(s0.refreshed_subdomains, p.num_subdomains());
  EXPECT_EQ(s0.skipped_steps, 0);

  // Clean repeat: the whole step is skipped.
  m->update_values();
  core::CacheStats s1 = m->cache_stats();
  EXPECT_EQ(s1.refreshed_subdomains, s0.refreshed_subdomains);
  EXPECT_EQ(s1.skipped_steps, 1);

  // One dirty subdomain: exactly one block reassembles.
  decomp::scale_subdomain(p, 1, 2.0);
  m->update_values();
  core::CacheStats s2 = m->cache_stats();
  EXPECT_EQ(s2.refreshed_subdomains, s0.refreshed_subdomains + 1);
  EXPECT_EQ(s2.skipped_subdomains,
            s1.skipped_subdomains + p.num_subdomains() - 1);

  // The refreshed blocks are numerically current: scaling K by a scalar
  // scales M̃ (lumped form of the scaled subdomain) by the same factor —
  // verified indirectly by solving and matching the unpreconditioned result.
  core::FetiSolverOptions opts;
  opts.dualop.approach = core::Approach::ImplMkl;
  opts.pcpg.preconditioner = "dirichlet";
  core::FetiSolver solver(p, opts, nullptr);
  solver.prepare();
  EXPECT_TRUE(solver.solve_step().converged);
}

TEST(PrecondLifecycle, SolverRebuildsPreconditionerOnKeyChange) {
  FetiProblem p = heat2d_problem();
  core::FetiSolverOptions opts;
  opts.dualop.approach = core::Approach::ImplMkl;
  opts.pcpg.preconditioner = "none";
  core::FetiSolver solver(p, opts, nullptr);
  solver.prepare();
  EXPECT_EQ(solver.preconditioner(), nullptr);
  EXPECT_EQ(solver.solve_step().preconditioner, "none");

  core::PcpgOptions pcpg = opts.pcpg;
  pcpg.preconditioner = "superlumped stiffness";
  solver.set_pcpg_options(pcpg);
  const core::FetiStepResult res = solver.solve_step();
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.preconditioner, "superlumped stiffness");
  ASSERT_NE(solver.preconditioner(), nullptr);
  EXPECT_EQ(std::string(solver.preconditioner()->key()),
            "superlumped stiffness");
}

TEST(PrecondLifecycle, PcpgOwnedFallbackRejectsGpuKeys) {
  FetiProblem p = heat2d_problem();
  core::DualOpConfig cfg;
  cfg.approach = core::Approach::ImplMkl;
  auto op = core::make_dual_operator(p, cfg, nullptr);
  op->prepare();
  op->update_values();
  core::Projector projector(p);
  core::PcpgOptions popts;
  popts.preconditioner = "lumped gpu";
  EXPECT_THROW(core::Pcpg(*op, projector, popts), std::invalid_argument);
  // The CPU sibling self-manages fine.
  popts.preconditioner = "lumped";
  core::Pcpg pcpg(*op, projector, popts);
  std::vector<double> d(static_cast<std::size_t>(p.num_lambdas));
  op->compute_d(d.data());
  EXPECT_TRUE(pcpg.solve(d).converged);
}

// ---------------------------------------------------------------------------
// Autotune recommendation + service fingerprint separation
// ---------------------------------------------------------------------------

TEST(PrecondAutotune, RecommendationFollowsHeterogeneity) {
  core::WorkloadHint uniform;
  EXPECT_EQ(core::recommend_preconditioner(uniform), "none");
  core::WorkloadHint mild;
  mild.coefficient_jump = 20.0;
  EXPECT_EQ(core::recommend_preconditioner(mild), "lumped multiplicity");
  core::WorkloadHint strong;
  strong.coefficient_jump = 1e4;
  EXPECT_EQ(core::recommend_preconditioner(strong), "dirichlet stiffness");
  EXPECT_EQ(core::recommend_preconditioner(strong, /*gpu=*/true),
            "dirichlet stiffness gpu");
  core::WorkloadHint stretched;
  stretched.aspect_ratio = 8.0;
  EXPECT_EQ(core::recommend_preconditioner(stretched), "dirichlet stiffness");
}

TEST(PrecondService, FingerprintSeparatesPreconditionerKeys) {
  FetiProblem p = heat2d_problem();
  const auto base = service::job_fingerprint(p, "expl mkl");
  EXPECT_EQ(base, service::job_fingerprint(p, "expl mkl", "none"));
  EXPECT_NE(base, service::job_fingerprint(p, "expl mkl", "lumped"));
  EXPECT_NE(service::job_fingerprint(p, "expl mkl", "lumped"),
            service::job_fingerprint(p, "expl mkl", "dirichlet stiffness"));
  // The separator keeps key-boundary ambiguities apart.
  EXPECT_NE(service::job_fingerprint(p, "expl a", "b"),
            service::job_fingerprint(p, "expl ab", ""));
}

}  // namespace
}  // namespace feti::precond
