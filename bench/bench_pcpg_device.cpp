// Device-resident PCPG harness — the transfer and wall-time gates of the
// GPU-resident solver loop (core/pcpg.cpp, solve_impl_device /
// solve_block_impl_device):
//
//  1. Iteration identity: the device engine mirrors the host engine's
//     operation order on the same virtual-GPU arithmetic, so the
//     device-state solve must report exactly the host iteration counts and
//     match its solutions to 1e-10 on every key.
//
//  2. Per-iteration PCIe traffic: the marginal D2H and H2D bytes of one
//     extra capped iteration (max_iterations 4 vs 3 at rel_tolerance 0 —
//     setup and finalize transfers cancel in the difference) must fit the
//     fixed scalar budget: convergence norms and step-length dots
//     (O(wave)), the projector's coarse right-hand sides (O(rt · wave)),
//     and the block Gram/coefficient panels (O(wave²)). One multiplier
//     vector (8m bytes) must NOT cross the link per iteration.
//
//  3. Wall time: on the 8-RHS clustered wave with block mode and the
//     device dirichlet preconditioner, the device-state solve must not be
//     slower than the host-staged loop, which re-uploads the search panel
//     and re-downloads the result of every F and M application.
//
// `--quick` runs the CI smoke configuration: one operator key on a smaller
// problem, same gates.

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"

using namespace feti;
using namespace feti::bench;

namespace {

int total_iterations(const std::vector<core::FetiStepResult>& steps) {
  int total = 0;
  for (const auto& s : steps) total += s.pcpg_iterations;
  return total;
}

bool all_converged(const std::vector<core::FetiStepResult>& steps) {
  for (const auto& s : steps)
    if (!s.converged) return false;
  return true;
}

double max_rel_diff(const std::vector<core::FetiStepResult>& a,
                    const std::vector<core::FetiStepResult>& b) {
  double diff = 0.0;
  for (std::size_t j = 0; j < a.size(); ++j) {
    double scale = 1e-30;
    for (double v : b[j].u) scale = std::max(scale, std::fabs(v));
    for (std::size_t i = 0; i < a[j].u.size(); ++i)
      diff = std::max(diff, std::fabs(a[j].u[i] - b[j].u[i]) / scale);
  }
  return diff;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  gpu::ExecutionContext& ctx = shared_context();
  const std::vector<std::string> keys =
      quick ? std::vector<std::string>{"expl legacy"}
            : std::vector<std::string>{"expl legacy", "expl hybrid",
                                       "expl legacy x2"};

  // 3D: the 2x2x2 subdomain grid's face interfaces give a dual space large
  // enough that one multiplier vector dwarfs the scalar budget (the
  // separation both transfer gates rely on) and that the host loop's
  // per-iteration panel staging is a measurable slice of the solve (the
  // wall-time gate; at smaller sizes it drowns in scheduling noise).
  // `--quick` trims the key list, not the problem.
  const int wave = 8;
  BuiltProblem bp = build_problem(3, fem::Physics::HeatTransfer, 12,
                                  mesh::ElementOrder::Linear);
  const std::size_t n = static_cast<std::size_t>(bp.problem.num_lambdas);
  std::printf("=== device-resident PCPG: %d-RHS clustered wave, %d dual "
              "unknowns (%s mode) ===\n",
              wave, bp.problem.num_lambdas, quick ? "quick" : "full");

  Table table({"key", "host iters", "device iters", "host [ms]",
               "device [ms]", "marg D2H [B]", "marg H2D [B]", "budget [B]",
               "max rel diff"});
  bool iters_identical = true, traffic_scalar = true, device_no_slower = true,
       converged = true, matches = true;
  for (const std::string& key : keys) {
    core::FetiSolverOptions opts;
    opts.dualop = core::recommend_config(key, 2, bp.dofs_per_subdomain);
    opts.pcpg.rel_tolerance = 1e-9;
    opts.pcpg.max_iterations = 5000;
    opts.pcpg.preconditioner = "dirichlet stiffness gpu";
    opts.pcpg.block.enabled = true;
    core::FetiSolver solver(bp.problem, opts, &ctx);
    solver.prepare();
    solver.dual_operator().update_values();

    // Clustered right-hand sides: the physical d scaled and nudged by F·v
    // (v smooth and deterministic), the shape a tenant's load-multiplier
    // wave has in the service layer.
    std::vector<double> d(n);
    solver.dual_operator().compute_d(d.data());
    std::vector<double> v(n), fv(n);
    for (std::size_t i = 0; i < n; ++i)
      v[i] = std::sin(0.3 * static_cast<double>(i));
    solver.dual_operator().apply(v.data(), fv.data());
    std::vector<std::vector<double>> rhs(wave);
    for (int j = 0; j < wave; ++j) {
      rhs[j].resize(n);
      const double s = 1.0 + 0.02 * j;
      for (std::size_t i = 0; i < n; ++i)
        rhs[j][i] = s * d[i] + 1e-3 * j * fv[i];
    }

    // Host-staged loop (device_state Off): λ/r/P live on the host, every
    // F / M application pays the panel upload + result download. Timed
    // interleaved with the device-resident loop (device_state On),
    // best-of-reps per mode: machine-level drift between whole runs is far
    // larger than the staging effect under test, and interleaving + min
    // cancels it where back-to-back medians do not.
    core::PcpgOptions host_pcpg = opts.pcpg;
    host_pcpg.device_state = core::PcpgOptions::DeviceState::Off;
    core::PcpgOptions dev_pcpg = opts.pcpg;
    dev_pcpg.device_state = core::PcpgOptions::DeviceState::On;
    std::vector<core::FetiStepResult> host, device;
    solver.set_pcpg_options(host_pcpg);
    host = solver.solve_step_many(rhs);  // warm-up
    solver.set_pcpg_options(dev_pcpg);
    device = solver.solve_step_many(rhs);  // warm-up (lazy device staging)
    double host_seconds = 1e300, device_seconds = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      Timer th;
      solver.set_pcpg_options(host_pcpg);
      host = solver.solve_step_many(rhs);
      host_seconds = std::min(host_seconds, th.seconds());
      Timer td;
      solver.set_pcpg_options(dev_pcpg);
      device = solver.solve_step_many(rhs);
      device_seconds = std::min(device_seconds, td.seconds());
    }

    // Marginal per-iteration traffic: capped 4-iteration minus capped
    // 3-iteration runs at rel_tolerance 0 — identical setup and finalize
    // transfers cancel, the difference is one iteration's PCIe cost.
    core::PcpgOptions probe = dev_pcpg;
    probe.rel_tolerance = 0.0;
    probe.max_iterations = 3;
    solver.set_pcpg_options(probe);
    const std::vector<core::FetiStepResult> lo = solver.solve_step_many(rhs);
    probe.max_iterations = 4;
    solver.set_pcpg_options(probe);
    const std::vector<core::FetiStepResult> hi = solver.solve_step_many(rhs);
    const std::uint64_t marg_d2h = hi[0].pcpg_d2h_bytes - lo[0].pcpg_d2h_bytes;
    const std::uint64_t marg_h2d = hi[0].pcpg_h2d_bytes - lo[0].pcpg_h2d_bytes;

    // Scalar budget of one iteration: convergence + step scalars, coarse
    // projector right-hand sides, block Gram/coefficient panels. One dual
    // vector is 8n bytes — the gate only separates scalars from vectors
    // when the budget sits well below that.
    const std::uint64_t rt =
        static_cast<std::uint64_t>(solver.projector().kernel_total());
    const std::uint64_t w = static_cast<std::uint64_t>(wave);
    const std::uint64_t budget = 8 * (8 * w + 4 * rt * w + 4 * w * w);

    const int hi_iters = total_iterations(host);
    const int di_iters = total_iterations(device);
    const double diff = max_rel_diff(device, host);
    iters_identical = iters_identical && hi_iters == di_iters;
    for (std::size_t j = 0; j < host.size(); ++j)
      iters_identical = iters_identical &&
                        host[j].pcpg_iterations == device[j].pcpg_iterations;
    traffic_scalar = traffic_scalar && marg_d2h <= budget &&
                     marg_h2d <= budget &&
                     marg_d2h < n * sizeof(double) &&
                     marg_h2d < n * sizeof(double);
    // The hybrid baseline's host-staged apply already batches the whole
    // panel through the device SYMM with two staging copies per
    // application, so loop residency saves it almost nothing and its wall
    // time sits inside timing noise — reported, but the hard gate rides on
    // the legacy family, whose host path re-stages every panel. The 5%
    // band is measurement tolerance for shared CI runners (interleaved
    // best-of-reps cancels drift, not scheduling jitter on the loop's
    // per-iteration host↔device synchronization points).
    if (key.find("hybrid") == std::string::npos)
      device_no_slower =
          device_no_slower && device_seconds <= 1.05 * host_seconds;
    converged = converged && all_converged(host) && all_converged(device);
    matches = matches && diff <= 1e-10;
    table.add_row({key, std::to_string(hi_iters), std::to_string(di_iters),
                   Table::num(host_seconds * 1e3, 2),
                   Table::num(device_seconds * 1e3, 2),
                   std::to_string(marg_d2h), std::to_string(marg_h2d),
                   std::to_string(budget), Table::sci(diff, 1)});
  }
  table.print();

  shape_check("device-state iteration counts identical to the host engine "
              "(every key, every system)",
              iters_identical);
  shape_check("marginal per-iteration PCIe traffic fits the scalar budget "
              "(< one dual vector in either direction)",
              traffic_scalar);
  shape_check("device-resident solve not slower than the host-staged loop "
              "on the clustered 8-RHS wave (5% measurement band)",
              device_no_slower);
  shape_check("every wave system converged in both modes", converged);
  shape_check("device solutions match host to 1e-10", matches);
  const bool pass = iters_identical && traffic_scalar && device_no_slower &&
                    converged && matches;
  return pass ? 0 : 1;
}
