#include "service/operator_pool.hpp"

#include <algorithm>

namespace feti::service {

std::uint64_t job_fingerprint(const decomp::FetiProblem& problem,
                              std::string_view resolved_key,
                              std::string_view precond_key) {
  // The problem *instance* is the identity: a pooled operator holds
  // references into the problem's CSR storage, so content-identical but
  // distinct problem objects must map to distinct entries. Fold in the
  // pattern summary as a guard against address reuse across rebuilds.
  std::uint64_t h = decomp::kFnv1aOffset;
  h = decomp::fnv1a_word(h, reinterpret_cast<std::uintptr_t>(&problem));
  h = decomp::fnv1a_word(h, static_cast<std::uint64_t>(problem.num_lambdas));
  h = decomp::fnv1a_word(h,
                         static_cast<std::uint64_t>(problem.num_subdomains()));
  for (char c : resolved_key)
    h = decomp::fnv1a_word(h, static_cast<unsigned char>(c));
  // A separator keeps ("expl a", "b") and ("expl ab", "") distinct; an
  // empty preconditioner key hashes as its normalized spelling so legacy
  // two-argument callers land on the same entry as explicit "none".
  h = decomp::fnv1a_word(h, 0xffu);
  if (precond_key.empty()) precond_key = "none";
  for (char c : precond_key)
    h = decomp::fnv1a_word(h, static_cast<unsigned char>(c));
  return h;
}

std::size_t estimate_solver_bytes(const decomp::FetiProblem& problem) {
  std::size_t bytes = 0;
  for (const auto& s : problem.sub) {
    bytes += 2 * static_cast<std::size_t>(s.k_reg.nnz()) * sizeof(double);
    bytes += static_cast<std::size_t>(s.ndof()) *
             static_cast<std::size_t>(s.kernel_dim()) * sizeof(double);
  }
  return bytes;
}

OperatorPool::OperatorPool(gpu::DevicePool& devices, std::size_t budget_bytes)
    : devices_(devices), budget_bytes_(budget_bytes) {}

OperatorPool::Entry* OperatorPool::find_locked(std::uint64_t fingerprint) {
  for (Entry& e : entries_)
    if (e.fingerprint == fingerprint) return &e;
  return nullptr;
}

void OperatorPool::evict_over_budget_locked() {
  if (budget_bytes_ == 0) return;
  while (resident_bytes_ > budget_bytes_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->state != State::Idle) continue;
      if (victim == entries_.end() || it->last_used < victim->last_used)
        victim = it;
    }
    if (victim == entries_.end()) return;  // everything pinned — overshoot
    resident_bytes_ -= victim->bytes;
    ++evictions_;
    entries_.erase(victim);
  }
}

OperatorPool::Checkout OperatorPool::checkout(std::uint64_t fingerprint,
                                              const SolverFactory& make) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    Entry* e = find_locked(fingerprint);
    if (e == nullptr) break;  // miss — build below
    if (e->state == State::Idle) {
      e->state = State::CheckedOut;
      e->last_used = ++tick_;
      ++hits_;
      Checkout out;
      out.solver = e->solver.get();
      out.fingerprint = fingerprint;
      out.shard = e->shard;
      out.hit = true;
      lock.unlock();
      out.lease = devices_.acquire(out.shard);
      return out;
    }
    // Preparing or CheckedOut by another worker: one wave at a time.
    cv_.wait(lock);
  }

  ++misses_;
  entries_.push_back(Entry{fingerprint, State::Preparing, nullptr, 0, 0, 0});
  lock.unlock();

  // Build + prepare outside the pool lock — preparation is the expensive
  // phase pooling exists to amortize, and other fingerprints must keep
  // flowing while this one factorizes. Waiters on *this* fingerprint stay
  // blocked via the Preparing state.
  gpu::DevicePool::Lease lease = devices_.acquire();
  std::unique_ptr<core::FetiSolver> solver;
  try {
    solver = make(lease.context());
    solver->prepare();
  } catch (...) {
    lock.lock();
    entries_.remove_if(
        [&](const Entry& e) { return e.fingerprint == fingerprint; });
    cv_.notify_all();
    throw;
  }

  std::size_t bytes = solver->dual_operator().apply_bytes();
  if (bytes == 0) bytes = estimate_solver_bytes(solver->dual_operator().problem());

  lock.lock();
  Entry* e = find_locked(fingerprint);
  e->solver = std::move(solver);
  e->state = State::CheckedOut;
  e->shard = lease.shard();
  e->bytes = bytes;
  e->last_used = ++tick_;
  resident_bytes_ += bytes;
  evict_over_budget_locked();

  Checkout out;
  out.solver = e->solver.get();
  out.fingerprint = fingerprint;
  out.shard = e->shard;
  out.hit = false;
  out.lease = std::move(lease);
  return out;
}

void OperatorPool::give_back(std::uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* e = find_locked(fingerprint);
  check(e != nullptr && e->state == State::CheckedOut,
        "OperatorPool::give_back: fingerprint is not checked out");
  e->state = State::Idle;
  e->last_used = ++tick_;
  evict_over_budget_locked();
  cv_.notify_all();
}

PoolStats OperatorPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  PoolStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = entries_.size();
  s.resident_bytes = resident_bytes_;
  s.budget_bytes = budget_bytes_;
  return s;
}

std::size_t OperatorPool::remaining_budget() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (budget_bytes_ == 0) return 0;
  return budget_bytes_ > resident_bytes_ ? budget_bytes_ - resident_bytes_ : 0;
}

}  // namespace feti::service
