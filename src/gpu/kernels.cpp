#include "gpu/kernels.hpp"

#include <algorithm>

namespace feti::gpu::kernels {

namespace {

/// The single-RHS kernels are the one-column case of the block kernels.
std::vector<DualMapBlock> as_blocks(const std::vector<DualMap>& jobs) {
  std::vector<DualMapBlock> blocks;
  blocks.reserve(jobs.size());
  for (const auto& j : jobs) blocks.push_back({j.map, j.n, j.local, 1});
  return blocks;
}

}  // namespace

void scatter_batch(Stream& s, const double* cluster,
                   std::vector<DualMap> jobs) {
  scatter_batch(s, cluster, /*cluster_ld=*/0, /*nrhs=*/1,
                la::Layout::RowMajor, as_blocks(jobs));
}

void gather_batch(Stream& s, double* cluster, idx cluster_size,
                  std::vector<DualMap> jobs) {
  gather_batch(s, cluster, cluster_size, /*cluster_ld=*/cluster_size,
               /*nrhs=*/1, la::Layout::RowMajor, as_blocks(jobs));
}

void scatter_batch(Stream& s, const double* cluster, idx cluster_ld,
                   idx nrhs, la::Layout local_layout,
                   std::vector<DualMapBlock> jobs) {
  if (nrhs == 0) return;
  s.submit([cluster, cluster_ld, nrhs, local_layout,
            jobs = std::move(jobs)] {
    for (const auto& j : jobs) {
      if (local_layout == la::Layout::RowMajor) {
        // Row i of the panel holds lambda i of every RHS: the inner loop
        // streams over the right-hand sides with one map lookup per row.
        for (idx i = 0; i < j.n; ++i) {
          const double* src = cluster + j.map[i];
          double* row = j.local + static_cast<widx>(i) * j.ld;
          for (idx r = 0; r < nrhs; ++r)
            row[r] = src[static_cast<widx>(r) * cluster_ld];
        }
      } else {
        for (idx r = 0; r < nrhs; ++r) {
          const double* src = cluster + static_cast<widx>(r) * cluster_ld;
          double* col = j.local + static_cast<widx>(r) * j.ld;
          for (idx i = 0; i < j.n; ++i) col[i] = src[j.map[i]];
        }
      }
    }
  });
}

void gather_batch(Stream& s, double* cluster, idx cluster_size,
                  idx cluster_ld, idx nrhs, la::Layout local_layout,
                  std::vector<DualMapBlock> jobs) {
  if (nrhs == 0) return;
  s.submit([cluster, cluster_size, cluster_ld, nrhs, local_layout,
            jobs = std::move(jobs)] {
    for (idx r = 0; r < nrhs; ++r)
      std::fill_n(cluster + static_cast<widx>(r) * cluster_ld, cluster_size,
                  0.0);
    for (const auto& j : jobs) {
      if (local_layout == la::Layout::RowMajor) {
        for (idx i = 0; i < j.n; ++i) {
          double* dst = cluster + j.map[i];
          const double* row = j.local + static_cast<widx>(i) * j.ld;
          for (idx r = 0; r < nrhs; ++r)
            dst[static_cast<widx>(r) * cluster_ld] += row[r];
        }
      } else {
        for (idx r = 0; r < nrhs; ++r) {
          double* dst = cluster + static_cast<widx>(r) * cluster_ld;
          const double* col = j.local + static_cast<widx>(r) * j.ld;
          for (idx i = 0; i < j.n; ++i) dst[j.map[i]] += col[i];
        }
      }
    }
  });
}

void fill_zero(Stream& s, double* data, idx n) {
  s.submit([data, n] { std::fill_n(data, n, 0.0); });
}

}  // namespace feti::gpu::kernels
