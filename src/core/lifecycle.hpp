#pragma once

// Shared staged-lifecycle machinery: the time-step cache counters and the
// per-subdomain dirty tracking consumed by every component that follows the
// prepare()/update_values() contract — the dual operators (core) and the
// preconditioners (precond). The rules are documented in
// docs/ARCHITECTURE.md; this header only factors the mechanism so both
// families track values identically.

#include <atomic>
#include <cstdint>
#include <vector>

#include "decomp/feti_problem.hpp"

namespace feti::core {

/// Time-step cache effectiveness counters, exposed by
/// DualOperator::cache_stats() and Preconditioner::cache_stats(). Like
/// loop_fallback_count(), the counters accumulate from construction and
/// never reset — callers that want per-step deltas snapshot before/after
/// (FetiSolver::solve_step does exactly that to fill FetiStepResult).
struct CacheStats {
  long steps = 0;                 ///< update_values() calls
  long skipped_steps = 0;         ///< steps that refreshed no subdomain
  long refreshed_subdomains = 0;  ///< per-subdomain refactorizations done
  long skipped_subdomains = 0;    ///< per-subdomain refreshes avoided
};

/// Atomic backing storage of CacheStats. Counter writes happen on the
/// lifecycle thread (update_values / apply); readers may snapshot from any
/// thread at any time — the service layer polls a tenant's counters while
/// another tenant's solve is in flight. Each counter is individually
/// atomic; a snapshot taken mid-update may be ahead on one counter and
/// behind on another, which is fine for monotonic statistics (the
/// lifecycle calls themselves are externally serialized per operator — see
/// the thread-safety contract in docs/ARCHITECTURE.md).
struct AtomicCacheStats {
  std::atomic<long> steps{0};
  std::atomic<long> skipped_steps{0};
  std::atomic<long> refreshed_subdomains{0};
  std::atomic<long> skipped_subdomains{0};

  [[nodiscard]] CacheStats snapshot() const {
    CacheStats s;
    s.steps = steps.load(std::memory_order_relaxed);
    s.skipped_steps = skipped_steps.load(std::memory_order_relaxed);
    s.refreshed_subdomains =
        refreshed_subdomains.load(std::memory_order_relaxed);
    s.skipped_subdomains = skipped_subdomains.load(std::memory_order_relaxed);
    return s;
  }
};

/// The dirty-set decision of one update_values() call: the owned
/// subdomains whose K values changed since the last committed refresh
/// (ascending global indices), plus their new content hashes under
/// ValueTracking::Hashed.
struct UpdatePlan {
  std::vector<idx> dirty;
  std::vector<std::uint64_t> hash;
  [[nodiscard]] bool skip() const { return dirty.empty(); }
};

/// Per-component change-detection state: the last values versions/hashes a
/// component refreshed against, indexed by global subdomain (0 = never
/// seen, so the first step after prepare() is all-dirty). begin() computes
/// the dirty subset at the top of an update_values() implementation and
/// counts the step in `stats` (an empty dirty set counts as skipped);
/// end() commits the refreshed versions/hashes at the bottom of a
/// successful refresh — not reached on exception, so a failed refresh is
/// retried in full on the next step.
class ValueTracker {
 public:
  UpdatePlan begin(const decomp::FetiProblem& p, AtomicCacheStats& stats);
  UpdatePlan begin(const decomp::FetiProblem& p, const std::vector<idx>& owned,
                   AtomicCacheStats& stats);
  void end(const decomp::FetiProblem& p, const UpdatePlan& plan,
           AtomicCacheStats& stats);

 private:
  std::vector<std::uint64_t> seen_version_;
  std::vector<std::uint64_t> seen_hash_;
};

}  // namespace feti::core
