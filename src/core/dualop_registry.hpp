#pragma once

// String-keyed registry of dual-operator implementations.
//
// Each implementation family registers one factory per Table-III key
// together with its axis metadata (see register_cpu_dual_operators /
// register_gpu_dual_operators in dualop_cpu.cpp / dualop_gpu.cpp). All
// construction and every capability query (uses_gpu, is_explicit,
// availability) is answered from this metadata, so adding a backend or a
// whole new family is one registration call — no switch to extend, no call
// site to touch.
//
// The key grammar (`<representation> <backend-or-api>[ xN]`) and the
// lifecycle contract every registered operator must honor —
// prepare() once per pattern, update_values() per step with dirty-subdomain
// tracking, apply()/apply(X, Y, nrhs) per iteration — are documented in
// docs/ARCHITECTURE.md. In short, a factory must return an operator that:
//  * is constructed cheaply (no factorization, no device allocation; those
//    belong to prepare());
//  * refreshes only the subdomains the problem reports dirty in
//    update_values() (use DualOperator::begin_update/end_update, which also
//    maintain cache_stats());
//  * serves batched applies without degrading to a loop of single applies
//    (or accepts that loop_fallback_count() exposes the degradation).
// Counters (cache_stats(), loop_fallback_count()) accumulate from operator
// construction and never reset; preprocess() is a deprecated alias of
// update_values() kept for pre-registry callers.

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.hpp"

namespace feti::decomp {
struct FetiProblem;
}
namespace feti::gpu {
class ExecutionContext;
}

namespace feti::core {

class DualOperator;

/// Metadata registered alongside each factory.
struct DualOperatorInfo {
  std::string key;      ///< Table-III name, e.g. "expl legacy"
  ApproachAxes axes;    ///< the axis tuple the implementation realizes
  std::string summary;  ///< one-line description for listings
  [[nodiscard]] bool requires_device() const {
    return axes.device != ExecDevice::Cpu;
  }
};

/// Factories receive the execution resources explicitly: the context is
/// required for GPU-backed implementations and ignored by CPU ones.
using DualOperatorFactory = std::function<std::unique_ptr<DualOperator>(
    const decomp::FetiProblem&, const DualOpConfig&, gpu::ExecutionContext*)>;

class DualOperatorRegistry {
 public:
  /// The process-wide registry, with the built-in families registered on
  /// first use.
  static DualOperatorRegistry& instance();

  /// Registers a factory under info.key. Throws std::invalid_argument on a
  /// duplicate key or an invalid axis tuple.
  void add(DualOperatorInfo info, DualOperatorFactory factory);

  [[nodiscard]] bool contains(std::string_view key) const;
  /// Metadata lookup (copy — the registry may grow concurrently); throws
  /// std::invalid_argument for unknown keys.
  [[nodiscard]] DualOperatorInfo info(std::string_view key) const;
  /// All registered keys, sorted.
  [[nodiscard]] std::vector<std::string> keys() const;
  [[nodiscard]] std::size_t size() const;

  // -- capability queries (metadata-derived) --

  [[nodiscard]] bool uses_gpu(std::string_view key) const;
  [[nodiscard]] bool is_explicit(std::string_view key) const;
  /// Whether the implementation can be constructed in this process given
  /// the (possibly null) execution context.
  [[nodiscard]] bool available(std::string_view key,
                               const gpu::ExecutionContext* context) const;

  /// Constructs the implementation registered under `key`. Throws
  /// std::invalid_argument for unknown keys and when the implementation
  /// requires an execution context but none is supplied. The returned
  /// operator is unprepared: call prepare() once, then update_values()
  /// before the first apply()/kplus_solve()/compute_d().
  [[nodiscard]] std::unique_ptr<DualOperator> create(
      std::string_view key, const decomp::FetiProblem& problem,
      const DualOpConfig& config,
      gpu::ExecutionContext* context = nullptr) const;

 private:
  struct Entry {
    DualOperatorInfo info;
    DualOperatorFactory factory;
  };
  /// Requires mutex_ held.
  const Entry* find_locked(std::string_view key) const;
  /// Copies the entry out under mutex_; throws for unknown keys.
  Entry at(std::string_view key) const;

  /// add() is a public extension point, so lookups and registrations may
  /// race; entries_ is guarded throughout.
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

}  // namespace feti::core
