#include "core/autotune.hpp"

#include <algorithm>
#include <string>

#include "core/dualop_registry.hpp"

namespace feti::core {

ExplicitGpuOptions recommend_options(gpu::sparse::Api api, int dim,
                                     idx dofs_per_subdomain) {
  ExplicitGpuOptions opt;
  // Table II, row "path": SYRK for both API generations.
  opt.path = Path::Syrk;
  // Scatter/gather: GPU ("better for a wider range of subdomain sizes",
  // Section V-A-e).
  opt.scatter_gather = SgLocation::Gpu;

  if (api == gpu::sparse::Api::Modern) {
    // Modern generic API: the sparse TRSM underperforms, so dense storage
    // always wins; dense factors are kept col-major; the RHS order follows
    // the aspect ratio of B̃ᵀ (2D: narrow -> col-major, 3D: wide ->
    // row-major).
    opt.fwd_storage = FactorStorage::Dense;
    opt.bwd_storage = FactorStorage::Dense;
    opt.fwd_order = la::Layout::ColMajor;
    opt.bwd_order = la::Layout::ColMajor;
    opt.rhs_order = dim == 2 ? la::Layout::ColMajor : la::Layout::RowMajor;
  } else {
    // Legacy API: 2D factors stay very sparse -> sparse storage; 3D factors
    // are denser -> dense below ~12k DOFs, sparse above. Sparse factors are
    // passed row-major (CSC costs extra memory), dense ones col-major. The
    // RHS is row-major (col-major costs a temporary copy of the RHS).
    const bool sparse_factor =
        dim == 2 || dofs_per_subdomain > 12000;
    opt.fwd_storage =
        sparse_factor ? FactorStorage::Sparse : FactorStorage::Dense;
    opt.bwd_storage = opt.fwd_storage;
    opt.fwd_order = sparse_factor ? la::Layout::RowMajor : la::Layout::ColMajor;
    opt.bwd_order = opt.fwd_order;
    opt.rhs_order = la::Layout::RowMajor;
  }
  return opt;
}

ExplicitGpuOptions recommend_options(gpu::sparse::Api api, int dim,
                                     idx dofs_per_subdomain, int nrhs_hint) {
  ExplicitGpuOptions opt = recommend_options(api, dim, dofs_per_subdomain);
  // Batched applications keep more subdomain kernels in flight; give the
  // scheduler one stream per simultaneous RHS up to a modest cap (never
  // fewer than the single-RHS recommendation).
  if (nrhs_hint > 1)
    opt.streams = std::min(std::max(nrhs_hint, opt.streams), 8);
  return opt;
}

namespace {

/// Whether an explicit-family workload should demote F̃ storage to fp32:
/// the fp64 footprint overflows the per-shard memory budget (while fp32
/// fits — when even fp32 overflows, precision cannot save the run and the
/// recommendation stays fp64), or the caller declared the apply phase
/// bandwidth-bound.
bool prefer_f32(const WorkloadHint& w, int shards) {
  if (w.bandwidth_bound) return true;
  if (w.memory_budget_bytes == 0 || w.num_subdomains <= 0 ||
      w.lambdas_per_subdomain <= 0)
    return false;
  const std::size_t blocks =
      static_cast<std::size_t>(w.num_subdomains) *
      static_cast<std::size_t>(w.lambdas_per_subdomain) *
      static_cast<std::size_t>(w.lambdas_per_subdomain);
  const std::size_t budget =
      w.memory_budget_bytes * static_cast<std::size_t>(std::max(1, shards));
  return blocks * sizeof(double) > budget && blocks * sizeof(float) <= budget;
}

/// Whether an explicit-family workload should switch to the sparsity-aware
/// assembly (" sp" keys): the caller measured the boundary fraction and the
/// subdomains are interior-heavy enough that the nb-column boundary solve
/// panel beats the m-column dense one with room for the extra expansion
/// SpMMs. 0 means unknown and never triggers; a fraction approaching 1
/// (every DOF on the boundary) makes sp pure overhead.
bool prefer_sparsity(const WorkloadHint& w) {
  return w.boundary_fraction > 0.0 && w.boundary_fraction < 0.75;
}

}  // namespace

std::string recommend_preconditioner(const WorkloadHint& workload,
                                     bool gpu) {
  // Thresholds follow the classical FETI guidance: scaled Dirichlet is the
  // robust choice once coefficient jumps reach a couple of orders of
  // magnitude (or the subdomains are strongly stretched), lumped with
  // multiplicity scaling covers mild heterogeneity at a fraction of the
  // setup cost, and uniform well-shaped problems are fastest without any
  // preconditioning at all.
  const double jump = std::max(workload.coefficient_jump, 1.0);
  const double aspect = std::max(workload.aspect_ratio, 1.0);
  std::string key;
  if (jump >= 100.0 || aspect >= 4.0)
    key = "dirichlet stiffness";
  else if (jump >= 10.0 || aspect >= 2.0)
    key = "lumped multiplicity";
  else
    return "none";
  if (gpu) key += " gpu";
  return key;
}

DualOpConfig recommend_config(const ApproachAxes& axes, int dim,
                              idx dofs_per_subdomain, int nrhs_hint,
                              const gpu::DeviceTopology& topology,
                              const WorkloadHint& workload) {
  DualOpConfig cfg;
  const int shards =
      topology.num_devices >= 4 ? 4 : (topology.num_devices >= 2 ? 2 : 1);
  // Precision choice: only the explicit families carry F̃ storage, and a
  // caller that already pinned F32 on the axes keeps it.
  ApproachAxes chosen = axes;
  if (chosen.repr == Representation::Explicit &&
      chosen.precision == Precision::F64 && prefer_f32(workload, shards))
    chosen.precision = Precision::F32;
  // Sparsity choice: interior-heavy subdomains (small measured boundary
  // fraction) get the boundary-restricted assembly; a caller that already
  // pinned the sp axis keeps it.
  if (chosen.repr == Representation::Explicit && !chosen.sparsity &&
      prefer_sparsity(workload))
    chosen.sparsity = true;
  cfg.select(chosen);
  if (axes.device == ExecDevice::Cpu) return cfg;
  cfg.gpu = recommend_options(axes.api, dim, dofs_per_subdomain, nrhs_hint);
  if (topology.streams_per_device > 0)
    cfg.gpu.streams =
        gpu::ExecutionContext::clamp_streams(topology.streams_per_device);
  // Multi-device topologies route every device-backed family (explicit,
  // implicit, and hybrid all have registered sharded variants) to the
  // largest sharded variant the topology can feed.
  if (topology.num_devices >= 2)
    cfg.key = chosen.key() + " x" + std::to_string(shards);
  return cfg;
}

DualOpConfig recommend_config(std::string_view key, int dim,
                              idx dofs_per_subdomain, int nrhs_hint,
                              const gpu::DeviceTopology& topology) {
  const DualOperatorRegistry& registry = DualOperatorRegistry::instance();
  const ApproachAxes axes =
      registry.contains(key) ? registry.info(key).axes : parse_axes(key);
  DualOpConfig cfg =
      recommend_config(axes, dim, dofs_per_subdomain, nrhs_hint, topology);
  // The caller picked a concrete implementation; keep it selected even
  // where the topology remap would have chosen another variant.
  cfg.key = std::string(key);
  return cfg;
}

}  // namespace feti::core
