#pragma once

// The Total FETI solver driver — Algorithm 2 of the paper: one preparation
// phase, then per time step a FETI preprocessing (numeric factorization +
// explicit assembly where configured) followed by the PCPG iteration and
// primal recovery.

#include <memory>

#include "core/pcpg.hpp"

namespace feti::core {

struct FetiSolverOptions {
  DualOpConfig dualop;
  PcpgOptions pcpg;
};

struct FetiStepResult {
  std::vector<double> u;       ///< gathered global solution
  int iterations = 0;
  double rel_residual = 0.0;
  bool converged = false;
  double preprocess_seconds = 0.0;  ///< DualOperator::update_values() time
  double apply_seconds = 0.0;  ///< total dual-operator application time
  double step_seconds = 0.0;
};

class FetiSolver {
 public:
  /// `context` supplies the execution resources for GPU-backed dual
  /// operators (ignored by CPU configurations).
  FetiSolver(const decomp::FetiProblem& problem, FetiSolverOptions options,
             gpu::ExecutionContext* context = nullptr);

  /// Preparation (Algorithm 2, line 1).
  void prepare();

  /// One time step (lines 2-7): preprocessing + PCPG + primal solution.
  FetiStepResult solve_step();

  [[nodiscard]] DualOperator& dual_operator() { return *dualop_; }
  [[nodiscard]] const Projector& projector() const { return projector_; }

 private:
  const decomp::FetiProblem& problem_;
  FetiSolverOptions options_;
  std::unique_ptr<DualOperator> dualop_;
  Projector projector_;
  bool prepared_ = false;
};

}  // namespace feti::core
