#pragma once

// Structured simplex meshes on the unit square / unit cube, and their
// decomposition into subdomains and clusters.
//
// This mirrors the paper's evaluation setup (Section V): "a square or cube
// domain discretized into a mesh composed of triangles or tetrahedral
// elements", linear or quadratic, split into a grid of subdomains that are
// grouped into clusters (Fig. 1). Quadratic meshes place their mid-edge
// nodes on the half-spacing lattice, so node coordinates are exact lattice
// points for both orders.

#include <array>
#include <vector>

#include "util/common.hpp"

namespace feti::mesh {

enum class ElementOrder : std::uint8_t { Linear, Quadratic };

enum class ElementType : std::uint8_t { Tri3, Tri6, Tet4, Tet10 };

[[nodiscard]] constexpr int nodes_per_element(ElementType t) {
  switch (t) {
    case ElementType::Tri3: return 3;
    case ElementType::Tri6: return 6;
    case ElementType::Tet4: return 4;
    case ElementType::Tet10: return 10;
  }
  return 0;
}

[[nodiscard]] constexpr int element_dim(ElementType t) {
  return (t == ElementType::Tri3 || t == ElementType::Tri6) ? 2 : 3;
}

const char* to_string(ElementType t);

/// Simplex mesh with lattice coordinates.
struct Mesh {
  int dim = 2;
  ElementType type = ElementType::Tri3;
  idx num_nodes = 0;
  std::vector<double> coords;  ///< dim * num_nodes, interleaved
  std::vector<idx> elems;      ///< nodes_per_element(type) * num_elements
  /// Nodes on the Dirichlet boundary (the x = 0 face), sorted.
  std::vector<idx> dirichlet_nodes;

  [[nodiscard]] idx num_elements() const {
    return static_cast<idx>(elems.size()) /
           nodes_per_element(type);
  }
  [[nodiscard]] const idx* element(idx e) const {
    return elems.data() + static_cast<widx>(e) * nodes_per_element(type);
  }
  [[nodiscard]] double coord(idx node, int c) const {
    return coords[static_cast<widx>(node) * dim + c];
  }
};

/// Uniform triangle mesh of the unit square with nx-by-ny cells (two
/// triangles per cell).
Mesh make_grid_2d(idx nx, idx ny, ElementOrder order);

/// Uniform tetrahedral mesh of the unit cube with nx-by-ny-by-nz cells
/// (six tetrahedra per cell, Kuhn subdivision).
Mesh make_grid_3d(idx nx, idx ny, idx nz, ElementOrder order);

/// One subdomain of a decomposition: a compactly renumbered submesh plus
/// the mapping back to global node ids.
struct Subdomain {
  Mesh local;
  std::vector<idx> node_l2g;  ///< local node -> global node
};

/// Decomposition of a structured mesh into a grid of subdomains, with
/// subdomains grouped into clusters (each cluster maps to one process/GPU in
/// the paper's model; here: one virtual GPU).
struct Decomposition {
  std::vector<Subdomain> subdomains;
  /// cluster id per subdomain (contiguous blocks of equal size).
  std::vector<idx> cluster_of;
  idx num_clusters = 1;
  /// Global node multiplicity (how many subdomains own each node).
  std::vector<idx> node_multiplicity;
  idx global_nodes = 0;
};

/// Splits the structured mesh produced by make_grid_2d into sx-by-sy
/// subdomain blocks (cell ranges), grouped into `clusters` clusters.
Decomposition decompose_2d(const Mesh& mesh, idx nx, idx ny, idx sx, idx sy,
                           idx clusters = 1);

/// Splits the structured mesh produced by make_grid_3d into sx-by-sy-by-sz
/// subdomain blocks, grouped into `clusters` clusters.
Decomposition decompose_3d(const Mesh& mesh, idx nx, idx ny, idx nz, idx sx,
                           idx sy, idx sz, idx clusters = 1);

}  // namespace feti::mesh
