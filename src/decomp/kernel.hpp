#pragma once

// Kernel bases R_i of the singular subdomain stiffness matrices.
//
// In Total FETI every subdomain floats, so the kernels are known
// analytically: the constant function for heat transfer, and the rigid body
// modes (translations + rotations) for elasticity. The basis is
// orthonormalized, which both stabilizes the coarse problem G^T G and makes
// the fixing-nodes regularization analysis exact.

#include "fem/physics.hpp"
#include "la/dense.hpp"
#include "mesh/grid.hpp"

namespace feti::decomp {

/// Number of kernel vectors for the physics/dimension combination.
[[nodiscard]] constexpr int kernel_dim(fem::Physics p, int dim) {
  if (p == fem::Physics::HeatTransfer) return 1;
  return dim == 2 ? 3 : 6;
}

/// Builds the orthonormal kernel basis (ndof x kernel_dim, col-major) for a
/// subdomain mesh.
la::DenseMatrix build_kernel(const mesh::Mesh& mesh, fem::Physics physics);

/// Modified Gram-Schmidt orthonormalization of the columns of `a` (in
/// place). Throws if the columns are linearly dependent.
void orthonormalize_columns(la::DenseView a);

}  // namespace feti::decomp
