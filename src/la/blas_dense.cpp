#include "la/blas_dense.hpp"

#include <cmath>

#include "la/scale.hpp"

namespace feti::la {

namespace {

/// Strides for reading op(A) element (i, j) as data[i*s_i + j*s_j]. A
/// transposed read of one layout equals an untransposed read of the other,
/// so four (layout, trans) combinations collapse into two stride patterns.
struct Strided {
  const double* data;
  widx si;
  widx sj;
  [[nodiscard]] double at(idx i, idx j) const {
    return data[static_cast<widx>(i) * si + static_cast<widx>(j) * sj];
  }
};

Strided make_op(ConstDenseView a, Trans trans) {
  const bool row_like =
      (a.layout == Layout::RowMajor) != (trans == Trans::Yes);
  if (row_like) return {a.data, a.ld, 1};
  return {a.data, 1, a.ld};
}

using detail::scale_vec;
using detail::store_scaled;

}  // namespace

double dot(idx n, const double* x, const double* y) {
  double s = 0.0;
  for (idx i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

void axpy(idx n, double alpha, const double* x, double* y) {
  for (idx i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scal(idx n, double alpha, double* x) {
  for (idx i = 0; i < n; ++i) x[i] *= alpha;
}

double nrm2(idx n, const double* x) { return std::sqrt(dot(n, x, x)); }

void gemv(double alpha, ConstDenseView a, Trans trans, const double* x,
          double beta, double* y) {
  const idx m = trans == Trans::No ? a.rows : a.cols;
  const idx n = trans == Trans::No ? a.cols : a.rows;
  const Strided op = make_op(a, trans);
  if (op.sj == 1) {
    // op(A) rows are contiguous: dot-product form.
    for (idx i = 0; i < m; ++i) {
      const double* row = op.data + static_cast<widx>(i) * op.si;
      store_scaled(beta, y[i]);
      y[i] += alpha * dot(n, row, x);
    }
  } else {
    // op(A) columns are contiguous: axpy form.
    scale_vec(m, beta, y);
    for (idx j = 0; j < n; ++j) {
      const double* col = op.data + static_cast<widx>(j) * op.sj;
      axpy(m, alpha * x[j], col, y);
    }
  }
}

void symv(Uplo uplo, double alpha, ConstDenseView a, const double* x,
          double beta, double* y) {
  check(a.rows == a.cols, "symv: matrix must be square");
  const idx n = a.rows;
  scale_vec(n, beta, y);
  if (uplo == Uplo::Upper) {
    for (idx r = 0; r < n; ++r) {
      double acc = a.at(r, r) * x[r];
      for (idx c = r + 1; c < n; ++c) {
        const double v = a.at(r, c);
        acc += v * x[c];
        y[c] += alpha * v * x[r];
      }
      y[r] += alpha * acc;
    }
  } else {
    for (idx r = 0; r < n; ++r) {
      double acc = a.at(r, r) * x[r];
      for (idx c = 0; c < r; ++c) {
        const double v = a.at(r, c);
        acc += v * x[c];
        y[c] += alpha * v * x[r];
      }
      y[r] += alpha * acc;
    }
  }
}

void symm(Uplo uplo, double alpha, ConstDenseView a, ConstDenseView b,
          double beta, DenseView c) {
  check(a.rows == a.cols, "symm: matrix must be square");
  check(b.rows == a.cols && c.rows == a.rows && c.cols == b.cols,
        "symm: dimension mismatch");
  const idx n = a.rows, w = b.cols;
  // Fast path: row-major B and C give contiguous per-row RHS panels, so the
  // inner loops over the w right-hand sides vectorize.
  if (b.layout == Layout::RowMajor && c.layout == Layout::RowMajor) {
    for (idx i = 0; i < n; ++i)
      scale_vec(w, beta, c.data + static_cast<widx>(i) * c.ld);
    for (idx r = 0; r < n; ++r) {
      const idx c_begin = uplo == Uplo::Upper ? r + 1 : 0;
      const idx c_end = uplo == Uplo::Upper ? n : r;
      double* cr = c.data + static_cast<widx>(r) * c.ld;
      const double* br = b.data + static_cast<widx>(r) * b.ld;
      const double d = alpha * a.at(r, r);
      for (idx j = 0; j < w; ++j) cr[j] += d * br[j];
      for (idx col = c_begin; col < c_end; ++col) {
        const double v = alpha * a.at(r, col);
        if (v == 0.0) continue;
        double* cc = c.data + static_cast<widx>(col) * c.ld;
        const double* bc = b.data + static_cast<widx>(col) * b.ld;
        for (idx j = 0; j < w; ++j) {
          cr[j] += v * bc[j];
          cc[j] += v * br[j];
        }
      }
    }
    return;
  }
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < w; ++j) store_scaled(beta, c.at(i, j));
  // Mirror the stored triangle on the fly (same traversal as symv, with a
  // row of right-hand sides in the inner dimension).
  for (idx r = 0; r < n; ++r) {
    const idx c_begin = uplo == Uplo::Upper ? r + 1 : 0;
    const idx c_end = uplo == Uplo::Upper ? n : r;
    for (idx j = 0; j < w; ++j) c.at(r, j) += alpha * a.at(r, r) * b.at(r, j);
    for (idx col = c_begin; col < c_end; ++col) {
      const double v = alpha * a.at(r, col);
      if (v == 0.0) continue;
      for (idx j = 0; j < w; ++j) {
        c.at(r, j) += v * b.at(col, j);
        c.at(col, j) += v * b.at(r, j);
      }
    }
  }
}

void gemm(double alpha, ConstDenseView a, Trans ta, ConstDenseView b,
          Trans tb, double beta, DenseView c) {
  const idx m = ta == Trans::No ? a.rows : a.cols;
  const idx k = ta == Trans::No ? a.cols : a.rows;
  const idx kb = tb == Trans::No ? b.rows : b.cols;
  const idx n = tb == Trans::No ? b.cols : b.rows;
  check(k == kb, "gemm: inner dimension mismatch");
  check(c.rows == m && c.cols == n, "gemm: output dimension mismatch");
  const Strided oa = make_op(a, ta);
  const Strided ob = make_op(b, tb);
  // Simple ikj loop with C row accumulation; adequate for the modest GEMM
  // sizes in this library (projector setup, tests).
  for (idx i = 0; i < m; ++i) {
    for (idx j = 0; j < n; ++j) store_scaled(beta, c.at(i, j));
    for (idx p = 0; p < k; ++p) {
      const double av = alpha * oa.at(i, p);
      if (av == 0.0) continue;
      for (idx j = 0; j < n; ++j) c.at(i, j) += av * ob.at(p, j);
    }
  }
}

void syrk(Uplo uplo, Trans trans, double alpha, ConstDenseView a, double beta,
          DenseView c) {
  const idx n = trans == Trans::No ? a.rows : a.cols;
  const idx k = trans == Trans::No ? a.cols : a.rows;
  check(c.rows == n && c.cols == n, "syrk: output dimension mismatch");
  // op(A)(i, p): row i of the logical n x k operand.
  const Strided op = make_op(a, trans);
  const bool rows_contiguous = op.sj == 1;

  auto scale_triangle = [&] {
    if (uplo == Uplo::Upper) {
      for (idx r = 0; r < n; ++r)
        for (idx col = r; col < n; ++col) store_scaled(beta, c.at(r, col));
    } else {
      for (idx r = 0; r < n; ++r)
        for (idx col = 0; col <= r; ++col)
          store_scaled(beta, c.at(r, col));
    }
  };
  scale_triangle();

  if (rows_contiguous) {
    // Dot products of contiguous rows of op(A).
    for (idx r = 0; r < n; ++r) {
      const double* xr = op.data + static_cast<widx>(r) * op.si;
      if (uplo == Uplo::Upper) {
        for (idx col = r; col < n; ++col) {
          const double* xc = op.data + static_cast<widx>(col) * op.si;
          c.at(r, col) += alpha * dot(k, xr, xc);
        }
      } else {
        for (idx col = 0; col <= r; ++col) {
          const double* xc = op.data + static_cast<widx>(col) * op.si;
          c.at(r, col) += alpha * dot(k, xr, xc);
        }
      }
    }
  } else {
    // Columns of op(A)^T are contiguous: accumulate rank-1 updates with
    // blocking over p for locality.
    for (idx p = 0; p < k; ++p) {
      const double* col = op.data + static_cast<widx>(p) * op.sj;
      for (idx r = 0; r < n; ++r) {
        const double av = alpha * col[r];
        if (av == 0.0) continue;
        if (uplo == Uplo::Upper) {
          for (idx j = r; j < n; ++j) c.at(r, j) += av * col[j];
        } else {
          for (idx j = 0; j <= r; ++j) c.at(r, j) += av * col[j];
        }
      }
    }
  }
}

namespace {

/// Core triangular solve: solves T x = b column-by-column where T is the
/// logical triangular operand accessed through strides. `lower` refers to
/// the effective (post-transpose) triangle.
template <bool Lower>
void trsm_cols(const Strided& t, idx n, DenseView b) {
  for (idx j = 0; j < b.cols; ++j) {
    if (b.layout == Layout::ColMajor) {
      double* x = b.data + static_cast<widx>(j) * b.ld;
      if constexpr (Lower) {
        for (idx kk = 0; kk < n; ++kk) {
          const double xk = (x[kk] /= t.at(kk, kk));
          if (xk != 0.0)
            for (idx i = kk + 1; i < n; ++i) x[i] -= t.at(i, kk) * xk;
        }
      } else {
        for (idx kk = n - 1; kk >= 0; --kk) {
          const double xk = (x[kk] /= t.at(kk, kk));
          if (xk != 0.0)
            for (idx i = 0; i < kk; ++i) x[i] -= t.at(i, kk) * xk;
        }
      }
    } else {
      // Row-major single column: strided; handled by the vectorized
      // all-columns path below instead.
      FETI_ASSERT(false, "trsm_cols: row-major handled elsewhere");
    }
  }
}

/// Row-major RHS path: rows of B are contiguous, so the update
/// row_i -= T(i,k) * row_k vectorizes across all right-hand sides at once.
template <bool Lower>
void trsm_rows(const Strided& t, idx n, DenseView b) {
  const idx w = b.cols;
  auto row = [&](idx i) { return b.data + static_cast<widx>(i) * b.ld; };
  if constexpr (Lower) {
    for (idx kk = 0; kk < n; ++kk) {
      scal(w, 1.0 / t.at(kk, kk), row(kk));
      const double* rk = row(kk);
      for (idx i = kk + 1; i < n; ++i) {
        const double f = t.at(i, kk);
        if (f != 0.0) axpy(w, -f, rk, row(i));
      }
    }
  } else {
    for (idx kk = n - 1; kk >= 0; --kk) {
      scal(w, 1.0 / t.at(kk, kk), row(kk));
      const double* rk = row(kk);
      for (idx i = 0; i < kk; ++i) {
        const double f = t.at(i, kk);
        if (f != 0.0) axpy(w, -f, rk, row(i));
      }
    }
  }
}

}  // namespace

void trsm(Uplo uplo, Trans trans, ConstDenseView a, DenseView b) {
  check(a.rows == a.cols, "trsm: factor must be square");
  check(a.rows == b.rows, "trsm: dimension mismatch");
  const idx n = a.rows;
  if (n == 0 || b.cols == 0) return;
  const Strided t = make_op(a, trans);
  const bool lower_eff =
      (uplo == Uplo::Lower) != (trans == Trans::Yes);
  if (b.layout == Layout::RowMajor) {
    if (lower_eff)
      trsm_rows<true>(t, n, b);
    else
      trsm_rows<false>(t, n, b);
  } else {
    if (lower_eff)
      trsm_cols<true>(t, n, b);
    else
      trsm_cols<false>(t, n, b);
  }
}

void trsv(Uplo uplo, Trans trans, ConstDenseView a, double* x) {
  DenseView b{x, a.rows, 1, a.rows, Layout::ColMajor};
  trsm(uplo, trans, a, b);
}

bool potrf_lower(DenseView a) {
  check(a.rows == a.cols, "potrf_lower: matrix must be square");
  const idx n = a.rows;
  for (idx j = 0; j < n; ++j) {
    double d = a.at(j, j);
    for (idx k = 0; k < j; ++k) d -= a.at(j, k) * a.at(j, k);
    if (d <= 0.0) return false;
    d = std::sqrt(d);
    a.at(j, j) = d;
    for (idx i = j + 1; i < n; ++i) {
      double v = a.at(i, j);
      for (idx k = 0; k < j; ++k) v -= a.at(i, k) * a.at(j, k);
      a.at(i, j) = v / d;
    }
    for (idx i = 0; i < j; ++i) a.at(i, j) = 0.0;
  }
  return true;
}

}  // namespace feti::la
