#include "gpu/data.hpp"

namespace feti::gpu {

DeviceCsr upload_csr(Device& dev, Stream& s, const la::Csr& m) {
  DeviceCsr d;
  d.nrows = m.nrows();
  d.ncols = m.ncols();
  d.nnz = m.nnz();
  d.rowptr = dev.alloc_n<idx>(static_cast<std::size_t>(d.nrows) + 1);
  d.colidx = dev.alloc_n<idx>(std::max<idx>(1, d.nnz));
  d.vals = dev.alloc_n<double>(std::max<idx>(1, d.nnz));
  s.memcpy_h2d(d.rowptr, m.rowptr().data(),
               (static_cast<std::size_t>(d.nrows) + 1) * sizeof(idx));
  if (d.nnz > 0) {
    s.memcpy_h2d(d.colidx, m.colidx().data(),
                 static_cast<std::size_t>(d.nnz) * sizeof(idx));
    if (!m.vals().empty())
      s.memcpy_h2d(d.vals, m.vals().data(),
                   static_cast<std::size_t>(d.nnz) * sizeof(double));
  }
  return d;
}

void update_csr_values(Stream& s, const DeviceCsr& d, const la::Csr& m) {
  check(d.nnz == m.nnz(), "update_csr_values: nnz mismatch");
  if (d.nnz > 0)
    s.memcpy_h2d(d.vals, m.vals().data(),
                 static_cast<std::size_t>(d.nnz) * sizeof(double));
}

void free_csr(Device& dev, DeviceCsr& d) {
  dev.free(d.rowptr);
  dev.free(d.colidx);
  dev.free(d.vals);
  d = DeviceCsr{};
}

}  // namespace feti::gpu
