// Preconditioner harness: PCPG iteration counts and time-to-solution for
// every registered preconditioner key on a uniform problem and on a
// checkerboard heterogeneous problem (1:1e4 material contrast) — the
// regime preconditioning exists for. Reports per-key iteration counts,
// preconditioner setup (update_values) time, and total step time, on both
// problems, plus CSV.
//
// Hard gate (CI): on the heterogeneous problem the dirichlet
// preconditioner (best scaling variant) strictly reduces the PCPG
// iteration count vs "none" — the classical result this subsystem exists
// to reproduce: unscaled preconditioners degrade under coefficient jumps,
// while stiffness scaling keeps the dirichlet iteration count nearly
// contrast-independent. Also gated: every key converges and matches the
// unpreconditioned solution.
//
// `--quick` runs the CI smoke configuration: smaller problem, same gates.

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "decomp/heterogeneous.hpp"
#include "precond/precond_registry.hpp"

using namespace feti;
using namespace feti::bench;

namespace {

struct Run {
  std::string key;
  int uniform_iters = 0;
  int hetero_iters = 0;
  double setup_ms = 0.0;   ///< preconditioner update_values share, hetero
  double step_ms = 0.0;    ///< total step time, hetero
  bool converged = false;
  double max_diff = 0.0;   ///< vs the unpreconditioned solution, hetero
};

decomp::FetiProblem checkerboard(idx cells, idx splits, double jump) {
  mesh::Mesh m =
      mesh::make_grid_2d(cells * splits, cells * splits,
                         mesh::ElementOrder::Linear);
  auto dec = mesh::decompose_2d(m, cells * splits, cells * splits, splits,
                                splits);
  return decomp::build_feti_problem(
      dec, fem::Physics::HeatTransfer,
      decomp::checkerboard_materials_2d(splits, splits, jump));
}

core::FetiStepResult solve(decomp::FetiProblem& p, const std::string& key,
                           gpu::ExecutionContext& ctx) {
  core::FetiSolverOptions opts;
  opts.dualop.approach = core::Approach::ExplMkl;
  opts.pcpg.rel_tolerance = 1e-9;
  opts.pcpg.max_iterations = 5000;
  opts.pcpg.preconditioner = key;
  core::FetiSolver solver(p, opts, &ctx);
  solver.prepare();
  return solver.solve_step();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  const idx cells = quick ? 8 : 16;
  const idx splits = quick ? 3 : 4;
  const double jump = 1e4;
  decomp::FetiProblem uniform = checkerboard(cells, splits, 1.0);
  decomp::FetiProblem hetero = checkerboard(cells, splits, jump);
  gpu::ExecutionContext& ctx = shared_context();

  std::printf("=== preconditioner sweep: %dx%d subdomains, %d dual unknowns, "
              "checkerboard contrast 1:%.0e (%s mode) ===\n",
              splits, splits, hetero.num_lambdas, jump,
              quick ? "quick" : "full");

  const std::vector<double>* u_ref_hetero = nullptr;
  std::vector<double> ref_storage;
  std::vector<Run> runs;
  for (const std::string& key :
       precond::PreconditionerRegistry::instance().keys()) {
    Run run;
    run.key = key;
    run.uniform_iters = solve(uniform, key, ctx).pcpg_iterations;

    Timer step_timer;
    core::FetiSolverOptions opts;
    opts.dualop.approach = core::Approach::ExplMkl;
    opts.pcpg.rel_tolerance = 1e-9;
    opts.pcpg.max_iterations = 5000;
    opts.pcpg.preconditioner = key;
    core::FetiSolver solver(hetero, opts, &ctx);
    solver.prepare();
    const core::FetiStepResult res = solver.solve_step();
    run.step_ms = step_timer.millis();
    run.hetero_iters = res.pcpg_iterations;
    run.converged = res.converged;
    if (solver.preconditioner() != nullptr)
      run.setup_ms =
          solver.preconditioner()->timings().total("update_values") * 1e3;

    if (key == "none") {
      ref_storage = res.u;
      u_ref_hetero = &ref_storage;
    }
    if (u_ref_hetero != nullptr) {
      double scale = 1e-30;
      for (double v : *u_ref_hetero) scale = std::max(scale, std::fabs(v));
      for (std::size_t i = 0; i < res.u.size(); ++i)
        run.max_diff = std::max(
            run.max_diff, std::fabs(res.u[i] - (*u_ref_hetero)[i]) / scale);
    }
    runs.push_back(run);
  }

  Table table({"preconditioner", "uniform iters", "hetero iters",
               "setup [ms]", "hetero step [ms]", "max rel diff"});
  int none_iters = 0, dirichlet_best = 1 << 30, dirichlet_unscaled = 0,
      dirichlet_stiff = 0;
  bool all_converged = true, all_match = true;
  for (const Run& r : runs) {
    table.add_row({r.key, std::to_string(r.uniform_iters),
                   std::to_string(r.hetero_iters), Table::num(r.setup_ms, 2),
                   Table::num(r.step_ms, 2), Table::sci(r.max_diff, 1)});
    if (r.key == "none") none_iters = r.hetero_iters;
    if (r.key == "dirichlet") dirichlet_unscaled = r.hetero_iters;
    if (r.key == "dirichlet stiffness") dirichlet_stiff = r.hetero_iters;
    if (r.key.rfind("dirichlet", 0) == 0)
      dirichlet_best = std::min(dirichlet_best, r.hetero_iters);
    all_converged = all_converged && r.converged;
    all_match = all_match && r.max_diff < 1e-5;
  }
  table.print();
  std::printf("\nCSV:\n");
  table.print_csv(std::cout);

  // The iteration-count reduction is the hard CI gate; the rest is shape.
  const bool dirichlet_reduces = dirichlet_best < none_iters;
  shape_check("dirichlet (best scaling variant) strictly reduces PCPG "
              "iterations vs none on the heterogeneous checkerboard",
              dirichlet_reduces);
  shape_check("every preconditioner key converged on the heterogeneous "
              "problem",
              all_converged);
  shape_check("every key's solution matches the unpreconditioned one (1e-5)",
              all_match);
  shape_check("stiffness scaling beats unscaled dirichlet under the "
              "coefficient jump (advisory)",
              dirichlet_stiff < dirichlet_unscaled);
  return (dirichlet_reduces && all_converged && all_match) ? 0 : 1;
}
