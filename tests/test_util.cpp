// Tests for src/util: thread pool, timers, tables, RNG determinism.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <sstream>
#include <thread>

#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace feti {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i)
    futs.push_back(pool.submit([&] { counter.fetch_add(1); }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](long i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](long) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(0, 50,
                        [&](long i) {
                          if (i == 13) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, SizeClampsToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  auto f = pool.submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(t.millis(), 5.0);
  t.reset();
  EXPECT_LT(t.millis(), 5.0);
}

TEST(TimingRegistry, AccumulatesAcrossThreads) {
  TimingRegistry reg;
  ThreadPool pool(4);
  pool.parallel_for(0, 64, [&](long) { reg.add("phase", 0.5); });
  EXPECT_DOUBLE_EQ(reg.total("phase"), 32.0);
  EXPECT_EQ(reg.get("phase").count, 64);
}

TEST(TimingRegistry, ScopedTimerAddsEntry) {
  TimingRegistry reg;
  { ScopedTimer t(reg, "scope"); }
  EXPECT_EQ(reg.get("scope").count, 1);
  EXPECT_GE(reg.get("scope").total, 0.0);
}

TEST(TimingRegistry, UnknownNameIsZero) {
  TimingRegistry reg;
  EXPECT_EQ(reg.get("nope").count, 0);
  EXPECT_EQ(reg.total("nope"), 0.0);
}

TEST(MeasureMedian, RespectsMinReps) {
  int calls = 0;
  const double m = measure_median_seconds(5, 0.0, [&] { ++calls; });
  EXPECT_GE(calls, 5);
  EXPECT_GE(m, 0.0);
}

TEST(Table, PrintsAlignedRowsAndCsv) {
  Table t({"name", "value"});
  t.add_row({"alpha", Table::num(1.5, 2)});
  t.add_row({"b", "x"});
  std::ostringstream txt;
  t.print(txt);
  EXPECT_NE(txt.str().find("alpha"), std::string::npos);
  EXPECT_NE(txt.str().find("1.50"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_NE(csv.str().find("alpha,1.50"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.raw(), b.raw());
}

TEST(Rng, UniformStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, IntegerCoversInclusiveRange) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const long v = r.integer(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

}  // namespace
}  // namespace feti
