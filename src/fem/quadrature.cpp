#include "fem/quadrature.hpp"

namespace feti::fem {

std::vector<QuadraturePoint> simplex_rule(int dim, int degree) {
  check(dim == 2 || dim == 3, "simplex_rule: dim must be 2 or 3");
  check(degree >= 1 && degree <= 4, "simplex_rule: degree must be in 1..4");
  std::vector<QuadraturePoint> pts;
  if (dim == 2) {
    if (degree <= 1) {
      pts.push_back({{1.0 / 3, 1.0 / 3, 0.0}, 0.5});
    } else if (degree == 2) {
      const double w = 1.0 / 6.0;
      pts.push_back({{1.0 / 6, 1.0 / 6, 0.0}, w});
      pts.push_back({{2.0 / 3, 1.0 / 6, 0.0}, w});
      pts.push_back({{1.0 / 6, 2.0 / 3, 0.0}, w});
    } else {
      // Degree 4: 6-point Dunavant rule.
      const double a1 = 0.445948490915965, w1 = 0.223381589678011 / 2;
      const double a2 = 0.091576213509771, w2 = 0.109951743655322 / 2;
      pts.push_back({{a1, a1, 0.0}, w1});
      pts.push_back({{1 - 2 * a1, a1, 0.0}, w1});
      pts.push_back({{a1, 1 - 2 * a1, 0.0}, w1});
      pts.push_back({{a2, a2, 0.0}, w2});
      pts.push_back({{1 - 2 * a2, a2, 0.0}, w2});
      pts.push_back({{a2, 1 - 2 * a2, 0.0}, w2});
    }
  } else {
    if (degree <= 1) {
      pts.push_back({{0.25, 0.25, 0.25}, 1.0 / 6});
    } else if (degree == 2) {
      const double a = 0.585410196624969, b = 0.138196601125011;
      const double w = 1.0 / 24;
      pts.push_back({{a, b, b}, w});
      pts.push_back({{b, a, b}, w});
      pts.push_back({{b, b, a}, w});
      pts.push_back({{b, b, b}, w});
    } else {
      // Degree 4: 14-point Keast-style rule (positive weights).
      const double w0 = 0.073493043116362 / 6, a0 = 0.092735250310891;
      const double w1 = 0.112687925718016 / 6, a1 = 0.310885919263301;
      const double w2 = 0.042546020777082 / 6, a2 = 0.045503704125650;
      auto push4 = [&](double a, double w) {
        const double b = 1.0 - 3.0 * a;
        pts.push_back({{b, a, a}, w});
        pts.push_back({{a, b, a}, w});
        pts.push_back({{a, a, b}, w});
        pts.push_back({{a, a, a}, w});
      };
      push4(a0, w0);
      push4(a1, w1);
      auto push6 = [&](double a, double w) {
        const double b = 0.5 - a;
        pts.push_back({{a, a, b}, w});
        pts.push_back({{a, b, a}, w});
        pts.push_back({{b, a, a}, w});
        pts.push_back({{a, b, b}, w});
        pts.push_back({{b, a, b}, w});
        pts.push_back({{b, b, a}, w});
      };
      push6(a2, w2);
    }
  }
  return pts;
}

}  // namespace feti::fem
