#pragma once

// The solve-job vocabulary of the service layer: what a tenant submits
// (SolveJob), what it gets back (JobResult), and the fingerprint that keys
// the operator pool and decides which jobs may share a batched wave.

#include <cstdint>
#include <string>
#include <vector>

#include "core/feti_solver.hpp"

namespace feti::service {

/// One tenant's solve request: one FETI step on one problem. Independent
/// jobs may target different problems, sizes, operator keys, precisions,
/// and right-hand sides; the service packs the compatible ones into
/// batched solve_step_many waves.
struct SolveJob {
  /// The tenant's assembled problem. Must outlive the service (or at least
  /// every job and pooled operator referring to it), and must not be
  /// mutated while one of its jobs is in flight — mark value changes
  /// between submissions, never during them.
  const decomp::FetiProblem* problem = nullptr;

  /// Registry key for the dual operator ("expl legacy", "impl mkl f32 x2",
  /// ...). Empty = the service autotunes a key per job from the problem
  /// shape and the current pool occupancy (see SolverService::plan_key).
  std::string key;

  /// PCPG options for this job. Jobs must agree on these (and on the
  /// fingerprint) to share a wave — solve_step_many iterates one option
  /// set for the whole block.
  core::PcpgOptions pcpg;

  /// Optional custom dual right-hand side (length num_lambdas): a load
  /// case, residual probe, or deflation vector playing the role of the d
  /// vector of eq. (7). Empty = the physical d computed from the problem's
  /// current f via DualOperator::compute_d.
  std::vector<double> dual_rhs;

  /// Tenant tag, echoed into JobResult for bookkeeping; not interpreted.
  std::uint64_t tenant = 0;
};

/// Per-job outcome: the FetiStepResult of the step that served the job
/// plus the service-level accounting (queueing, batching, pooling).
struct JobResult : core::FetiStepResult {
  std::uint64_t job_id = 0;     ///< service-assigned, in submission order
  std::uint64_t tenant = 0;     ///< copied from the job
  std::uint64_t fingerprint = 0;  ///< pool key the job resolved to
  std::string key;              ///< operator key that served the job
  std::size_t shard = 0;        ///< device shard that served the job
  int wave_size = 1;            ///< jobs packed into the same batched wave
  /// True when the serving operator came prepared from the pool (no
  /// symbolic preparation paid); whether the numeric refresh was also
  /// skipped is the inherited values_cached / refreshed_subdomains.
  bool pool_hit = false;
  double queue_seconds = 0.0;    ///< submission → worker pickup
  double solve_seconds = 0.0;    ///< worker pickup → results ready
  double latency_seconds = 0.0;  ///< submission → results ready
};

/// The pool/wave key of a job: FNV-1a over the problem instance's identity,
/// the resolved operator key, and the normalized preconditioner key
/// (reusing the change-detection hash machinery of decomp). Two jobs with
/// equal fingerprints target the same problem object through the same
/// operator implementation AND the same preconditioner, so they can share
/// one pooled, prepared solver — value freshness within the pairing is
/// then the dirty-tracking cache's business, which is why a repeated
/// fingerprint with unchanged K skips update_values() entirely. Distinct
/// precision variants ("expl legacy" vs "expl legacy f32") and distinct
/// preconditioner keys hash to distinct entries by construction — a pooled
/// FetiSolver would otherwise tear down and rebuild its preconditioner on
/// every alternating checkout.
[[nodiscard]] std::uint64_t job_fingerprint(const decomp::FetiProblem& problem,
                                            std::string_view resolved_key,
                                            std::string_view precond_key = "");

}  // namespace feti::service
