#include "precond/preconditioner.hpp"

#include "precond/precond_registry.hpp"

namespace feti::precond {

const char* to_string(Kind k) {
  switch (k) {
    case Kind::None: return "none";
    case Kind::Lumped: return "lumped";
    case Kind::Superlumped: return "superlumped";
    case Kind::Dirichlet: return "dirichlet";
  }
  return "?";
}

const char* to_string(Scaling s) {
  switch (s) {
    case Scaling::None: return "none";
    case Scaling::Multiplicity: return "multiplicity";
    case Scaling::Stiffness: return "stiffness";
  }
  return "?";
}

void Preconditioner::apply(const double* x, double* y) {
  ScopedTimer t(timings_, "apply");
  apply_one(x, y);
}

void Preconditioner::apply(const double* x, double* y, idx nrhs) {
  check(nrhs >= 0, "Preconditioner::apply: negative nrhs");
  if (nrhs == 0) return;
  ScopedTimer t(timings_, "apply");
  if (nrhs == 1) {
    apply_one(x, y);
  } else {
    apply_many(x, y, nrhs);
  }
}

void Preconditioner::apply_device(const double* d_x, double* d_y, idx nrhs) {
  check(nrhs >= 0, "Preconditioner::apply_device: negative nrhs");
  if (nrhs == 0) return;
  ScopedTimer t(timings_, "apply");
  apply_many_device(d_x, d_y, nrhs);
}

void Preconditioner::apply_many_device(const double*, double*, idx) {
  check(false, std::string(key()) +
                   ": no device-resident apply (device_context() is null)");
}

void Preconditioner::apply_many(const double* x, double* y, idx nrhs) {
  ++loop_fallbacks_;
  const std::size_t stride = static_cast<std::size_t>(p_.num_lambdas);
  for (idx j = 0; j < nrhs; ++j)
    apply_one(x + static_cast<std::size_t>(j) * stride,
              y + static_cast<std::size_t>(j) * stride);
}

Preconditioner::UpdatePlan Preconditioner::begin_update() {
  return tracker_.begin(p_, cache_stats_);
}

void Preconditioner::end_update(const UpdatePlan& plan) {
  tracker_.end(p_, plan, cache_stats_);
}

std::vector<std::vector<double>> compute_scaling_weights(
    const decomp::FetiProblem& p, Scaling scaling) {
  if (scaling == Scaling::None) return {};
  const std::size_t nsub = p.sub.size();

  // Cluster-wide multiplier incidence: how many subdomains touch each
  // cluster lambda. Pattern-only, but cheap enough to recompute alongside
  // the stiffness totals.
  std::vector<idx> count(static_cast<std::size_t>(p.num_lambdas), 0);
  for (const auto& fs : p.sub)
    for (idx r : fs.lm_l2c) ++count[static_cast<std::size_t>(r)];

  std::vector<std::vector<double>> w(nsub);
  if (scaling == Scaling::Multiplicity) {
    for (std::size_t s = 0; s < nsub; ++s) {
      const auto& map = p.sub[s].lm_l2c;
      w[s].resize(map.size());
      for (std::size_t i = 0; i < map.size(); ++i)
        w[s][i] = 1.0 / static_cast<double>(
                            count[static_cast<std::size_t>(map[i])]);
    }
    return w;
  }

  // Stiffness scaling: κ_{s,r} = Σⱼ B(r,j)² Kⱼⱼ per subdomain row, summed
  // cluster-wide per multiplier; the weight of subdomain s on row r is the
  // relative stiffness of the *other* side, (total − κ) / total.
  std::vector<std::vector<double>> kappa(nsub);
  std::vector<double> total(static_cast<std::size_t>(p.num_lambdas), 0.0);
  for (std::size_t s = 0; s < nsub; ++s) {
    const auto& fs = p.sub[s];
    const la::Csr& b = fs.b;
    const la::Csr& k = fs.sys.k;
    kappa[s].assign(static_cast<std::size_t>(b.nrows()), 0.0);
    for (idx r = 0; r < b.nrows(); ++r) {
      double acc = 0.0;
      for (idx e = b.row_begin(r); e < b.row_end(r); ++e)
        acc += b.val(e) * b.val(e) * k.at(b.col(e), b.col(e));
      kappa[s][static_cast<std::size_t>(r)] = acc;
      total[static_cast<std::size_t>(fs.lm_l2c[static_cast<std::size_t>(r)])] +=
          acc;
    }
  }
  for (std::size_t s = 0; s < nsub; ++s) {
    const auto& map = p.sub[s].lm_l2c;
    w[s].resize(map.size());
    for (std::size_t i = 0; i < map.size(); ++i) {
      const std::size_t c = static_cast<std::size_t>(map[i]);
      if (count[c] <= 1 || total[c] <= 0.0) {
        // Single-incidence rows (the Total FETI Dirichlet constraints) and
        // degenerate rows keep full weight — (total − κ)/total would zero
        // them out and make M singular on that row.
        w[s][i] = 1.0;
      } else {
        w[s][i] = (total[c] - kappa[s][i]) / total[c];
      }
    }
  }
  return w;
}

std::unique_ptr<Preconditioner> make_preconditioner(
    const decomp::FetiProblem& problem, std::string_view key,
    gpu::ExecutionContext* context) {
  return PreconditionerRegistry::instance().create(normalize_key(key),
                                                   problem, context);
}

}  // namespace feti::precond
