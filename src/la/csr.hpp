#pragma once

// Compressed sparse row matrices.
//
// Convention used throughout the library: a CSC matrix is represented as the
// Csr of its transpose. Functions that accept "factor order" parameters
// (row-major = CSR, col-major = CSC, per Table I of the paper) take a Csr
// plus a flag describing which interpretation applies.

#include <vector>

#include "la/dense.hpp"
#include "util/common.hpp"

namespace feti::la {

struct Triplet {
  idx row;
  idx col;
  double val;
};

/// Non-owning CSR view (used by the virtual GPU kernels, which operate on
/// raw device arrays).
struct CsrView {
  idx rows = 0;
  idx cols_ = 0;
  const idx* rowptr = nullptr;
  const idx* colidx = nullptr;
  const double* values = nullptr;

  [[nodiscard]] idx nrows() const { return rows; }
  [[nodiscard]] idx ncols() const { return cols_; }
  [[nodiscard]] idx nnz() const { return rowptr ? rowptr[rows] : 0; }
  [[nodiscard]] idx row_begin(idx r) const { return rowptr[r]; }
  [[nodiscard]] idx row_end(idx r) const { return rowptr[r + 1]; }
  [[nodiscard]] idx col(idx k) const { return colidx[k]; }
  [[nodiscard]] double val(idx k) const { return values[k]; }
};

class Csr {
 public:
  Csr() = default;
  /// Builds an empty (all-zero) matrix with the given shape.
  Csr(idx nrows, idx ncols)
      : nrows_(nrows), ncols_(ncols), rowptr_(static_cast<std::size_t>(nrows) + 1, 0) {}
  /// Takes ownership of pre-built arrays. Column indices must be sorted and
  /// unique within each row; validated in debug paths via validate().
  Csr(idx nrows, idx ncols, std::vector<idx> rowptr, std::vector<idx> colidx,
      std::vector<double> vals);

  [[nodiscard]] idx nrows() const { return nrows_; }
  [[nodiscard]] idx ncols() const { return ncols_; }
  [[nodiscard]] idx nnz() const {
    return rowptr_.empty() ? 0 : rowptr_.back();
  }

  [[nodiscard]] const std::vector<idx>& rowptr() const { return rowptr_; }
  [[nodiscard]] const std::vector<idx>& colidx() const { return colidx_; }
  [[nodiscard]] const std::vector<double>& vals() const { return vals_; }
  [[nodiscard]] std::vector<double>& vals() { return vals_; }

  [[nodiscard]] idx row_begin(idx r) const { return rowptr_[r]; }
  [[nodiscard]] idx row_end(idx r) const { return rowptr_[r + 1]; }
  [[nodiscard]] idx col(idx k) const { return colidx_[k]; }
  [[nodiscard]] double val(idx k) const { return vals_[k]; }

  /// Value at (r, c), zero if not stored. O(log nnz(row)).
  [[nodiscard]] double at(idx r, idx c) const;

  /// Builds from (row, col, value) triplets; duplicates are summed.
  static Csr from_triplets(idx nrows, idx ncols, std::vector<Triplet> t);

  /// Builds from a dense view, dropping exact zeros.
  static Csr from_dense(ConstDenseView a, double drop_tol = 0.0);

  [[nodiscard]] Csr transposed() const;

  /// Writes this matrix into `out` (must match shape); zero-fills first.
  void to_dense(DenseView out) const;
  [[nodiscard]] DenseMatrix to_dense(Layout layout = Layout::ColMajor) const;

  /// Returns the symmetric permutation P*A*P^T for pattern-symmetric A,
  /// where perm[new] = old. Requires square matrix.
  [[nodiscard]] Csr permuted_symmetric(const std::vector<idx>& perm) const;

  /// Keeps only the upper (or lower) triangle including the diagonal.
  [[nodiscard]] Csr triangle(Uplo uplo) const;

  /// Structural + ordering invariants; throws on violation (test helper).
  void validate() const;

  [[nodiscard]] CsrView view() const {
    return {nrows_, ncols_, rowptr_.data(), colidx_.data(), vals_.data()};
  }
  /// Implicit view conversion so Csr can be passed to CsrView kernels.
  operator CsrView() const { return view(); }  // NOLINT

 private:
  idx nrows_ = 0;
  idx ncols_ = 0;
  std::vector<idx> rowptr_{0};
  std::vector<idx> colidx_;
  std::vector<double> vals_;
};

/// Inverse of a permutation given as perm[new] = old.
std::vector<idx> invert_permutation(const std::vector<idx>& perm);

}  // namespace feti::la
