// Block-PCPG and cross-step Krylov recycling harness — the two payoffs of
// the shared-panel iteration (core/pcpg.cpp, solve_block_impl):
//
//  1. Wave clustering: an 8-RHS same-fingerprint wave of clustered
//     right-hand sides (the service layer's bread and butter — load
//     multipliers of one tenant's step) iterates through one shared Krylov
//     panel, so every system converges through the union of the block's
//     search directions. Hard gate: block total iterations <= lockstep
//     total iterations, block solutions match lockstep to 1e-8.
//
//  2. Cross-step recycling: a transient heterogeneous checkerboard where
//     the load f changes every step but K does not (so the time-step cache
//     skips refactorization and the recycled panel stays valid). The warm
//     steps start from the Galerkin solution in the recycled space. Hard
//     gate: warm-step iterations < 0.5x the cold first step, warm
//     solutions match a cold lockstep reference to 1e-8, and the warm
//     steps actually report a nonzero deflation space.
//
// `--quick` runs the CI smoke configuration: one operator key on smaller
// problems, same gates.

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "decomp/heterogeneous.hpp"

using namespace feti;
using namespace feti::bench;

namespace {

decomp::FetiProblem checkerboard(idx cells, idx splits, double jump) {
  mesh::Mesh m = mesh::make_grid_2d(cells * splits, cells * splits,
                                    mesh::ElementOrder::Linear);
  auto dec = mesh::decompose_2d(m, cells * splits, cells * splits, splits,
                                splits);
  return decomp::build_feti_problem(
      dec, fem::Physics::HeatTransfer,
      decomp::checkerboard_materials_2d(splits, splits, jump));
}

/// Scales only the load vectors — K (and its content hash) untouched, so
/// update_values() takes the skip path and the recycler stays valid.
void scale_loads(decomp::FetiProblem& p, double factor) {
  for (auto& s : p.sub)
    for (auto& v : s.sys.f) v *= factor;
}

int total_iterations(const std::vector<core::FetiStepResult>& steps) {
  int total = 0;
  for (const auto& s : steps) total += s.pcpg_iterations;
  return total;
}

bool all_converged(const std::vector<core::FetiStepResult>& steps) {
  for (const auto& s : steps)
    if (!s.converged) return false;
  return true;
}

double max_rel_diff(const std::vector<core::FetiStepResult>& a,
                    const std::vector<core::FetiStepResult>& b) {
  double diff = 0.0;
  for (std::size_t j = 0; j < a.size(); ++j) {
    double scale = 1e-30;
    for (double v : b[j].u) scale = std::max(scale, std::fabs(v));
    for (std::size_t i = 0; i < a[j].u.size(); ++i)
      diff = std::max(diff, std::fabs(a[j].u[i] - b[j].u[i]) / scale);
  }
  return diff;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  gpu::ExecutionContext& ctx = shared_context();
  const std::vector<std::string> keys =
      quick ? std::vector<std::string>{"expl mkl"}
            : std::vector<std::string>{"expl mkl", "impl mkl", "expl legacy"};

  // --- 1. clustered 8-RHS wave: block vs lockstep ------------------------
  const int wave = 8;
  BuiltProblem bp = build_problem(2, fem::Physics::HeatTransfer,
                                  quick ? 8 : 16, mesh::ElementOrder::Linear);
  const std::size_t n = static_cast<std::size_t>(bp.problem.num_lambdas);
  std::printf("=== block-PCPG: %d-RHS clustered wave, %d dual unknowns "
              "(%s mode) ===\n",
              wave, bp.problem.num_lambdas, quick ? "quick" : "full");

  Table wave_table({"key", "lockstep iters", "block iters", "deflated",
                    "max rel diff"});
  bool block_no_worse = true, wave_matches = true, wave_converged = true;
  for (const std::string& key : keys) {
    core::FetiSolverOptions opts;
    opts.dualop = core::recommend_config(key, 2, bp.dofs_per_subdomain);
    opts.pcpg.rel_tolerance = 1e-9;
    opts.pcpg.max_iterations = 5000;
    core::FetiSolver solver(bp.problem, opts, &ctx);
    solver.prepare();
    solver.dual_operator().update_values();

    // Clustered right-hand sides: the physical d scaled and nudged — the
    // shape a tenant's load-multiplier wave has in the service layer. The
    // nudge is F·v (v a smooth deterministic vector), so every right-hand
    // side stays in the solvable range of the (singular) dual operator.
    std::vector<double> d(n);
    solver.dual_operator().compute_d(d.data());
    std::vector<double> v(n), fv(n);
    for (std::size_t i = 0; i < n; ++i)
      v[i] = std::sin(0.3 * static_cast<double>(i));
    solver.dual_operator().apply(v.data(), fv.data());
    std::vector<std::vector<double>> rhs(wave);
    for (int j = 0; j < wave; ++j) {
      rhs[j].resize(n);
      const double s = 1.0 + 0.02 * j;
      for (std::size_t i = 0; i < n; ++i)
        rhs[j][i] = s * d[i] + 1e-3 * j * fv[i];
    }

    std::vector<core::FetiStepResult> lockstep = solver.solve_step_many(rhs);

    core::PcpgOptions block_pcpg = opts.pcpg;
    block_pcpg.block.enabled = true;
    solver.set_pcpg_options(block_pcpg);
    std::vector<core::FetiStepResult> block = solver.solve_step_many(rhs);

    const int li = total_iterations(lockstep), bi = total_iterations(block);
    const double diff = max_rel_diff(block, lockstep);
    block_no_worse = block_no_worse && bi <= li;
    wave_matches = wave_matches && diff <= 1e-8;
    wave_converged =
        wave_converged && all_converged(lockstep) && all_converged(block);
    wave_table.add_row({key, std::to_string(li), std::to_string(bi),
                        std::to_string(block[0].deflation_dim),
                        Table::sci(diff, 1)});
  }
  wave_table.print();

  // --- 2. cross-step recycling on the transient checkerboard -------------
  const idx cells = quick ? 6 : 12, splits = 3;
  std::printf("\n=== Krylov recycling: transient checkerboard (1:1e4), "
              "%dx%d subdomains, f scaled 1.05x per step ===\n",
              splits, splits);

  Table recycle_table(
      {"step", "iters", "deflated", "cached", "residual", "ref diff"});
  bool warm_halved = true, warm_deflated = true, warm_matches = true,
       recycle_converged = true;
  {
    decomp::FetiProblem hetero = checkerboard(cells, splits, 1e4);
    core::FetiSolverOptions opts;
    opts.dualop = core::recommend_config("expl mkl", 2,
                                         hetero.max_subdomain_dofs());
    opts.pcpg.rel_tolerance = 1e-9;
    opts.pcpg.max_iterations = 5000;
    opts.pcpg.preconditioner = "dirichlet stiffness";
    opts.pcpg.block.enabled = true;
    opts.pcpg.block.recycle = true;
    // Generous budget: the panel must hold the cold step's whole Krylov
    // space for the warm Galerkin start to land on the solution.
    opts.pcpg.block.deflation_budget = 64;
    core::FetiSolver solver(hetero, opts, &ctx);
    solver.prepare();

    core::FetiSolverOptions ref_opts = opts;
    ref_opts.pcpg.block = core::BlockPcpgOptions{};

    const int steps = 4;
    int cold_iters = 0;
    for (int step = 0; step < steps; ++step) {
      if (step > 0) scale_loads(hetero, 1.05);
      core::FetiStepResult res = solver.solve_step();
      recycle_converged = recycle_converged && res.converged;

      // Cold lockstep reference at the same f state.
      core::FetiSolver ref(hetero, ref_opts, &ctx);
      ref.prepare();
      core::FetiStepResult ref_res = ref.solve_step();
      double scale = 1e-30, diff = 0.0;
      for (double v : ref_res.u) scale = std::max(scale, std::fabs(v));
      for (std::size_t i = 0; i < res.u.size(); ++i)
        diff = std::max(diff, std::fabs(res.u[i] - ref_res.u[i]) / scale);

      if (step == 0) {
        cold_iters = res.pcpg_iterations;
      } else {
        warm_halved = warm_halved && res.pcpg_iterations * 2 < cold_iters;
        warm_deflated = warm_deflated && res.deflation_dim > 0;
      }
      warm_matches = warm_matches && diff <= 1e-8;
      recycle_table.add_row({std::to_string(step),
                             std::to_string(res.pcpg_iterations),
                             std::to_string(res.deflation_dim),
                             res.values_cached ? "yes" : "no",
                             Table::sci(res.rel_residual, 1),
                             Table::sci(diff, 1)});
    }
  }
  recycle_table.print();

  shape_check("block iterations <= lockstep iterations on the clustered "
              "8-RHS wave (every key)",
              block_no_worse);
  shape_check("block solutions match lockstep to 1e-8", wave_matches);
  shape_check("every wave system converged in both modes", wave_converged);
  shape_check("recycled warm steps take < 0.5x the cold step's iterations",
              warm_halved);
  shape_check("warm steps start from a nonzero recycled deflation space",
              warm_deflated);
  shape_check("recycled solutions match a cold lockstep reference to 1e-8",
              warm_matches);
  shape_check("every recycled step converged", recycle_converged);
  const bool pass = block_no_worse && wave_matches && wave_converged &&
                    warm_halved && warm_deflated && warm_matches &&
                    recycle_converged;
  return pass ? 0 : 1;
}
