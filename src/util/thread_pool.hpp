#pragma once

// A small fixed-size thread pool. Two distinct consumers in this library:
//
//  * the virtual GPU device (src/gpu) uses a dedicated pool as its SM/worker
//    substrate, executing stream-ordered operations concurrently, and
//  * CPU-side per-subdomain loops use OpenMP directly (matching the paper's
//    "subdomains are handled by threads" model), so this pool intentionally
//    stays simple: FIFO queue, condition-variable wakeup, no work stealing.

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace feti {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>=1).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueue a task; returns a future for its completion.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool is shut down");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Static-chunked parallel for over [begin, end). Blocks until done.
  /// Exceptions from the body are rethrown on the calling thread.
  void parallel_for(long begin, long end,
                    const std::function<void(long)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace feti
