#include "core/krylov_recycler.hpp"

#include <algorithm>
#include <cmath>

#include "gpu/blas.hpp"
#include "gpu/runtime.hpp"
#include "la/blas_dense.hpp"

namespace feti::core {

namespace {
/// A direction whose F-norm collapses below this fraction of its original
/// after orthogonalization is numerically inside the stored span already.
constexpr double kAbsorbRelFloor = 1e-12;
/// Gram pivot floor for the panel factorization — a column this dependent
/// on the kept ones contributes nothing but conditioning trouble.
constexpr double kGramPivotRelTol = 1e-12;
}  // namespace

KrylovRecycler::KrylovRecycler(idx n, int budget)
    : n_(n), budget_(std::max(1, budget)),
      u_(n, static_cast<idx>(std::max(1, budget)), la::Layout::ColMajor),
      fu_(n, static_cast<idx>(std::max(1, budget)), la::Layout::ColMajor) {
  check(n >= 0, "KrylovRecycler: negative dimension");
}

KrylovRecycler::~KrylovRecycler() {
  if (dev_ == nullptr) return;
  dev_->synchronize();
  dev_->free(u_dev_);
  dev_->free(fu_dev_);
  if (c_dev_ != nullptr) dev_->free(c_dev_);
}

la::ConstDenseView KrylovRecycler::u() const {
  return {u_.data(), n_, k_, u_.ld(), la::Layout::ColMajor};
}

la::ConstDenseView KrylovRecycler::fu() const {
  return {fu_.data(), n_, k_, fu_.ld(), la::Layout::ColMajor};
}

void KrylovRecycler::ensure_gram() const {
  if (!gram_dirty_) return;
  gram_l_ = la::DenseMatrix(k_, k_, la::Layout::ColMajor);
  la::gemm(1.0, u(), la::Trans::Yes, fu(), la::Trans::No, 0.0,
           gram_l_.view());
  gram_perm_.resize(static_cast<std::size_t>(k_));
  gram_rank_ = la::potrf_pivoted_lower(gram_l_.view(), gram_perm_.data(),
                                       kGramPivotRelTol);
  gram_dirty_ = false;
}

void KrylovRecycler::solve_gram(double* b) const {
  std::vector<double> t(static_cast<std::size_t>(gram_rank_));
  for (idx j = 0; j < gram_rank_; ++j)
    t[static_cast<std::size_t>(j)] = b[gram_perm_[j]];
  const la::ConstDenseView lead(gram_l_.data(), gram_rank_, gram_rank_,
                                gram_l_.ld(), la::Layout::ColMajor);
  la::trsv(la::Uplo::Lower, la::Trans::No, lead, t.data());
  la::trsv(la::Uplo::Lower, la::Trans::Yes, lead, t.data());
  std::fill_n(b, k_, 0.0);
  for (idx j = 0; j < gram_rank_; ++j)
    b[gram_perm_[j]] = t[static_cast<std::size_t>(j)];
}

void KrylovRecycler::ensure_device(gpu::Device& dev, gpu::Stream& s,
                                   std::size_t cols) const {
  check(dev_ == nullptr || dev_ == &dev,
        "KrylovRecycler: device mirror already bound to another device");
  const std::size_t n = static_cast<std::size_t>(n_);
  if (dev_ == nullptr) {
    u_dev_ = dev.alloc_n<double>(n * static_cast<std::size_t>(budget_));
    fu_dev_ = dev.alloc_n<double>(n * static_cast<std::size_t>(budget_));
    dev_ = &dev;  // set last: a throwing alloc leaves no half-bound mirror
  }
  if (uploaded_version_ != version_) {
    const std::size_t bytes = n * static_cast<std::size_t>(k_) * sizeof(double);
    if (bytes > 0) {
      s.memcpy_h2d(u_dev_, u_.data(), bytes);
      s.memcpy_h2d(fu_dev_, fu_.data(), bytes);
    }
    uploaded_version_ = version_;
  }
  if (c_cap_ < cols) {
    if (c_dev_ != nullptr) {
      dev.synchronize();
      dev.free(c_dev_);
      c_dev_ = nullptr;
      c_cap_ = 0;
    }
    c_dev_ = dev.alloc_n<double>(static_cast<std::size_t>(budget_) * cols);
    c_cap_ = cols;
  }
  if (c_host_.size() < static_cast<std::size_t>(budget_) * cols)
    c_host_.resize(static_cast<std::size_t>(budget_) * cols);
}

void KrylovRecycler::project_out_device(gpu::Device& dev, gpu::Stream& s,
                                        const std::vector<double*>& ys) const {
  if (k_ == 0 || ys.empty()) return;
  ensure_gram();
  ensure_device(dev, s, ys.size());
  const std::size_t k = static_cast<std::size_t>(k_);
  const gpu::DeviceDense u{u_dev_, n_, k_, n_, la::Layout::ColMajor};
  const gpu::DeviceDense fu{fu_dev_, n_, k_, n_, la::Layout::ColMajor};

  // Two fused submissions (same per-column la:: calls as project_out);
  // only the k × cols coefficient block crosses PCIe for the Gram solves.
  double* c_dev = c_dev_;
  s.submit([fu, c_dev, k, ys] {
    for (std::size_t b = 0; b < ys.size(); ++b)
      la::gemv(1.0, fu.cview(), la::Trans::Yes, ys[b], 0.0, c_dev + b * k);
  });
  const std::size_t bytes = k * ys.size() * sizeof(double);
  s.memcpy_d2h(c_host_.data(), c_dev, bytes);
  s.synchronize();
  for (std::size_t b = 0; b < ys.size(); ++b)
    solve_gram(c_host_.data() + b * k);
  s.memcpy_h2d(c_dev, c_host_.data(), bytes);
  s.submit([u, c_dev, k, ys] {
    for (std::size_t b = 0; b < ys.size(); ++b)
      la::gemv(-1.0, u.cview(), la::Trans::No, c_dev + b * k, 1.0, ys[b]);
  });
}

idx KrylovRecycler::deflate_initial(double* lambda, double* r) const {
  if (k_ == 0) return 0;
  ensure_gram();
  // Galerkin start with one refinement pass: the correction is computed
  // from the *updated* residual the second time, so the span(U) component
  // of r lands at rounding level even though the panel Gram system is
  // solved (and U, FU stored) in finite precision.
  std::vector<double> mu(static_cast<std::size_t>(k_));
  for (int pass = 0; pass < 2; ++pass) {
    la::gemv(1.0, u(), la::Trans::Yes, r, 0.0, mu.data());
    solve_gram(mu.data());
    la::gemv(1.0, u(), la::Trans::No, mu.data(), 1.0, lambda);
    la::gemv(-1.0, fu(), la::Trans::No, mu.data(), 1.0, r);
  }
  return k_;
}

void KrylovRecycler::project_out(double* y, idx cols) const {
  if (k_ == 0 || cols <= 0) return;
  ensure_gram();
  std::vector<double> c(static_cast<std::size_t>(k_));
  for (idx j = 0; j < cols; ++j) {
    double* yj = y + static_cast<widx>(j) * n_;
    la::gemv(1.0, fu(), la::Trans::Yes, yj, 0.0, c.data());
    solve_gram(c.data());
    la::gemv(-1.0, u(), la::Trans::No, c.data(), 1.0, yj);
  }
}

void KrylovRecycler::absorb(const double* p, const double* q) {
  if (k_ >= static_cast<idx>(budget_)) return;
  const double pq = la::dot(n_, p, q);
  if (!(pq > 0.0)) return;  // indefinite or zero direction: never retained

  double* uc = u_.data() + static_cast<widx>(k_) * u_.ld();
  double* vc = fu_.data() + static_cast<widx>(k_) * fu_.ld();
  std::copy_n(p, n_, uc);
  std::copy_n(q, n_, vc);
  if (k_ > 0) {
    // F-orthogonalization against the stored panel (c = (FU)ᵀ p = Uᵀ F p),
    // applied to the direction and its operator product alike. Two passes
    // ("twice is enough"): CG directions arrive only loosely F-orthogonal.
    std::vector<double> c(static_cast<std::size_t>(k_));
    for (int pass = 0; pass < 2; ++pass) {
      la::gemv(1.0, fu(), la::Trans::Yes, uc, 0.0, c.data());
      la::gemv(-1.0, u(), la::Trans::No, c.data(), 1.0, uc);
      la::gemv(-1.0, fu(), la::Trans::No, c.data(), 1.0, vc);
    }
  }
  const double rem = la::dot(n_, uc, vc);
  if (!(rem > kAbsorbRelFloor * pq)) return;  // already in span — drop
  const double inv = 1.0 / std::sqrt(rem);
  la::scal(n_, inv, uc);
  la::scal(n_, inv, vc);
  ++k_;
  gram_dirty_ = true;
  ++version_;
}

}  // namespace feti::core
