#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace feti {

ThreadPool::ThreadPool(int threads) {
  threads = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(long begin, long end,
                              const std::function<void(long)>& body) {
  const long n = end - begin;
  if (n <= 0) return;
  const long chunks = std::min<long>(n, size());
  std::atomic<long> next(begin);
  std::exception_ptr error;
  std::mutex error_mutex;

  auto run_chunk = [&] {
    for (;;) {
      const long i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    }
  };

  std::vector<std::future<void>> futs;
  futs.reserve(static_cast<std::size_t>(chunks - 1));
  for (long c = 1; c < chunks; ++c) futs.push_back(submit(run_chunk));
  run_chunk();  // calling thread participates
  for (auto& f : futs) f.get();
  if (error) std::rethrow_exception(error);
}

}  // namespace feti
