// Tests for dense containers and BLAS kernels across every combination of
// memory layout, transposition, and triangle the Table-I parameter space can
// produce. Reference results come from naive triple loops.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "la/blas_dense.hpp"
#include "la/dense.hpp"
#include "util/rng.hpp"

namespace feti::la {
namespace {

DenseMatrix random_matrix(idx rows, idx cols, Layout layout,
                          std::uint64_t seed) {
  DenseMatrix m(rows, cols, layout);
  Rng rng(seed);
  for (idx r = 0; r < rows; ++r)
    for (idx c = 0; c < cols; ++c) m.at(r, c) = rng.uniform(-1.0, 1.0);
  return m;
}

/// Well-conditioned triangular factor with dominant diagonal.
DenseMatrix random_triangular(idx n, Uplo uplo, Layout layout,
                              std::uint64_t seed) {
  DenseMatrix m(n, n, layout);
  Rng rng(seed);
  for (idx r = 0; r < n; ++r) {
    for (idx c = 0; c < n; ++c) {
      const bool stored = uplo == Uplo::Lower ? c <= r : c >= r;
      if (!stored) continue;
      m.at(r, c) = r == c ? 2.0 + rng.uniform(0.0, 1.0)
                          : rng.uniform(-0.5, 0.5);
    }
  }
  return m;
}

std::vector<double> random_vector(idx n, std::uint64_t seed) {
  std::vector<double> v(static_cast<std::size_t>(n));
  Rng rng(seed);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

double ref_op_at(ConstDenseView a, Trans t, idx i, idx j) {
  return t == Trans::No ? a.at(i, j) : a.at(j, i);
}

TEST(DenseMatrix, StorageRoundTripBothLayouts) {
  for (Layout layout : {Layout::RowMajor, Layout::ColMajor}) {
    DenseMatrix m(3, 4, layout);
    double v = 1.0;
    for (idx r = 0; r < 3; ++r)
      for (idx c = 0; c < 4; ++c) m.at(r, c) = v++;
    v = 1.0;
    for (idx r = 0; r < 3; ++r)
      for (idx c = 0; c < 4; ++c) EXPECT_EQ(m.at(r, c), v++);
  }
}

TEST(DenseMatrix, LeadingDimensionMatchesLayout) {
  DenseMatrix rm(3, 5, Layout::RowMajor);
  EXPECT_EQ(rm.ld(), 5);
  DenseMatrix cm(3, 5, Layout::ColMajor);
  EXPECT_EQ(cm.ld(), 3);
}

TEST(DenseCopy, ConvertsBetweenLayouts) {
  DenseMatrix a = random_matrix(7, 5, Layout::RowMajor, 1);
  DenseMatrix b(7, 5, Layout::ColMajor);
  copy(a.cview(), b.view());
  EXPECT_EQ(max_abs_diff(a.cview(), b.cview()), 0.0);
}

TEST(DenseSymmetrize, MirrorsUpperToLower) {
  DenseMatrix a = random_matrix(6, 6, Layout::ColMajor, 2);
  symmetrize_from(a.view(), Uplo::Upper);
  for (idx r = 0; r < 6; ++r)
    for (idx c = 0; c < 6; ++c) EXPECT_EQ(a.at(r, c), a.at(c, r));
}

TEST(Level1, DotAxpyScalNrm2) {
  auto x = random_vector(100, 3);
  auto y = random_vector(100, 4);
  double ref = 0.0;
  for (int i = 0; i < 100; ++i) ref += x[i] * y[i];
  EXPECT_NEAR(dot(100, x.data(), y.data()), ref, 1e-12);

  auto y2 = y;
  axpy(100, 0.5, x.data(), y2.data());
  for (int i = 0; i < 100; ++i) EXPECT_NEAR(y2[i], y[i] + 0.5 * x[i], 1e-14);

  scal(100, 2.0, y2.data());
  for (int i = 0; i < 100; ++i)
    EXPECT_NEAR(y2[i], 2.0 * (y[i] + 0.5 * x[i]), 1e-14);

  EXPECT_NEAR(nrm2(100, x.data()), std::sqrt(dot(100, x.data(), x.data())),
              1e-12);
}

class GemvParam
    : public ::testing::TestWithParam<std::tuple<Layout, Trans>> {};

TEST_P(GemvParam, MatchesReference) {
  const auto [layout, trans] = GetParam();
  const idx rows = 13, cols = 9;
  DenseMatrix a = random_matrix(rows, cols, layout, 5);
  const idx m = trans == Trans::No ? rows : cols;
  const idx n = trans == Trans::No ? cols : rows;
  auto x = random_vector(n, 6);
  auto y = random_vector(m, 7);
  auto ref = y;
  for (idx i = 0; i < m; ++i) {
    double acc = 0.0;
    for (idx j = 0; j < n; ++j)
      acc += ref_op_at(a.cview(), trans, i, j) * x[j];
    ref[i] = 1.5 * acc + 0.25 * ref[i];
  }
  gemv(1.5, a.cview(), trans, x.data(), 0.25, y.data());
  for (idx i = 0; i < m; ++i) EXPECT_NEAR(y[i], ref[i], 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, GemvParam,
    ::testing::Combine(::testing::Values(Layout::RowMajor, Layout::ColMajor),
                       ::testing::Values(Trans::No, Trans::Yes)));

class SymvParam
    : public ::testing::TestWithParam<std::tuple<Layout, Uplo>> {};

TEST_P(SymvParam, MatchesFullProduct) {
  const auto [layout, uplo] = GetParam();
  const idx n = 11;
  DenseMatrix full = random_matrix(n, n, layout, 8);
  symmetrize_from(full.view(), Uplo::Upper);
  // Destroy the non-referenced triangle to prove symv ignores it.
  DenseMatrix tri(n, n, layout);
  for (idx r = 0; r < n; ++r)
    for (idx c = 0; c < n; ++c) {
      const bool stored = uplo == Uplo::Upper ? c >= r : c <= r;
      tri.at(r, c) = stored ? full.at(r, c) : 999.0;
    }
  auto x = random_vector(n, 9);
  std::vector<double> y(n, 0.0), ref(n, 0.0);
  for (idx r = 0; r < n; ++r)
    for (idx c = 0; c < n; ++c) ref[r] += full.at(r, c) * x[c];
  symv(uplo, 1.0, tri.cview(), x.data(), 0.0, y.data());
  for (idx i = 0; i < n; ++i) EXPECT_NEAR(y[i], ref[i], 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, SymvParam,
    ::testing::Combine(::testing::Values(Layout::RowMajor, Layout::ColMajor),
                       ::testing::Values(Uplo::Upper, Uplo::Lower)));

// symm across A/B/C layouts and both triangles, with beta == 0 (must
// overwrite, not read) and beta != 0 (must accumulate).
class SymmParam : public ::testing::TestWithParam<
                      std::tuple<Layout, Layout, Layout, Uplo, double>> {};

TEST_P(SymmParam, MatchesFullProduct) {
  const auto [la_, lb, lc, uplo, beta] = GetParam();
  const idx n = 9, w = 4;
  DenseMatrix full = random_matrix(n, n, la_, 21);
  symmetrize_from(full.view(), Uplo::Upper);
  // Destroy the non-referenced triangle to prove symm ignores it.
  DenseMatrix tri(n, n, la_);
  for (idx r = 0; r < n; ++r)
    for (idx c = 0; c < n; ++c) {
      const bool stored = uplo == Uplo::Upper ? c >= r : c <= r;
      tri.at(r, c) = stored ? full.at(r, c) : 999.0;
    }
  DenseMatrix b = random_matrix(n, w, lb, 22);
  DenseMatrix c = random_matrix(n, w, lc, 23);
  DenseMatrix ref(n, w, lc);
  for (idx r = 0; r < n; ++r)
    for (idx j = 0; j < w; ++j) {
      double acc = beta * c.at(r, j);
      for (idx k = 0; k < n; ++k) acc += 1.3 * full.at(r, k) * b.at(k, j);
      ref.at(r, j) = acc;
    }
  symm(uplo, 1.3, tri.cview(), b.cview(), beta, c.view());
  EXPECT_LT(max_abs_diff(c.cview(), ref.cview()), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, SymmParam,
    ::testing::Combine(::testing::Values(Layout::RowMajor, Layout::ColMajor),
                       ::testing::Values(Layout::RowMajor, Layout::ColMajor),
                       ::testing::Values(Layout::RowMajor, Layout::ColMajor),
                       ::testing::Values(Uplo::Upper, Uplo::Lower),
                       ::testing::Values(0.0, 0.7)));

class GemmParam : public ::testing::TestWithParam<
                      std::tuple<Layout, Layout, Layout, Trans, Trans>> {};

TEST_P(GemmParam, MatchesReference) {
  const auto [la_, lb, lc, ta, tb] = GetParam();
  const idx m = 7, k = 5, n = 6;
  DenseMatrix a = random_matrix(ta == Trans::No ? m : k,
                                ta == Trans::No ? k : m, la_, 10);
  DenseMatrix b = random_matrix(tb == Trans::No ? k : n,
                                tb == Trans::No ? n : k, lb, 11);
  DenseMatrix c = random_matrix(m, n, lc, 12);
  DenseMatrix ref(m, n, Layout::ColMajor);
  for (idx i = 0; i < m; ++i)
    for (idx j = 0; j < n; ++j) {
      double acc = 0.0;
      for (idx p = 0; p < k; ++p)
        acc += ref_op_at(a.cview(), ta, i, p) * ref_op_at(b.cview(), tb, p, j);
      ref.at(i, j) = 2.0 * acc - 1.0 * c.at(i, j);
    }
  gemm(2.0, a.cview(), ta, b.cview(), tb, -1.0, c.view());
  EXPECT_LT(max_abs_diff(c.cview(), ref.cview()), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, GemmParam,
    ::testing::Combine(::testing::Values(Layout::RowMajor, Layout::ColMajor),
                       ::testing::Values(Layout::RowMajor, Layout::ColMajor),
                       ::testing::Values(Layout::RowMajor, Layout::ColMajor),
                       ::testing::Values(Trans::No, Trans::Yes),
                       ::testing::Values(Trans::No, Trans::Yes)));

class SyrkParam : public ::testing::TestWithParam<
                      std::tuple<Layout, Layout, Trans, Uplo>> {};

TEST_P(SyrkParam, MatchesReference) {
  const auto [la_, lc, trans, uplo] = GetParam();
  const idx n = 8, k = 12;
  DenseMatrix a = random_matrix(trans == Trans::No ? n : k,
                                trans == Trans::No ? k : n, la_, 13);
  DenseMatrix c = random_matrix(n, n, lc, 14);
  DenseMatrix ref(n, n, Layout::ColMajor);
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < n; ++j) {
      double acc = 0.0;
      for (idx p = 0; p < k; ++p)
        acc += ref_op_at(a.cview(), trans, i, p) *
               ref_op_at(a.cview(), trans, j, p);
      ref.at(i, j) = 0.5 * acc + 2.0 * c.at(i, j);
    }
  syrk(uplo, trans, 0.5, a.cview(), 2.0, c.view());
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < n; ++j) {
      const bool stored = uplo == Uplo::Upper ? j >= i : j <= i;
      if (stored) {
        EXPECT_NEAR(c.at(i, j), ref.at(i, j), 1e-12);
      }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, SyrkParam,
    ::testing::Combine(::testing::Values(Layout::RowMajor, Layout::ColMajor),
                       ::testing::Values(Layout::RowMajor, Layout::ColMajor),
                       ::testing::Values(Trans::No, Trans::Yes),
                       ::testing::Values(Uplo::Upper, Uplo::Lower)));

class TrsmParam : public ::testing::TestWithParam<
                      std::tuple<Layout, Layout, Uplo, Trans>> {};

TEST_P(TrsmParam, SolvesAgainstMultiply) {
  const auto [lt, lb, uplo, trans] = GetParam();
  const idx n = 10, w = 4;
  DenseMatrix t = random_triangular(n, uplo, lt, 15);
  DenseMatrix x_true = random_matrix(n, w, lb, 16);
  // B = op(T) * X.
  DenseMatrix b(n, w, lb);
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < w; ++j) {
      double acc = 0.0;
      for (idx p = 0; p < n; ++p)
        acc += ref_op_at(t.cview(), trans, i, p) * x_true.at(p, j);
      b.at(i, j) = acc;
    }
  trsm(uplo, trans, t.cview(), b.view());
  EXPECT_LT(max_abs_diff(b.cview(), x_true.cview()), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, TrsmParam,
    ::testing::Combine(::testing::Values(Layout::RowMajor, Layout::ColMajor),
                       ::testing::Values(Layout::RowMajor, Layout::ColMajor),
                       ::testing::Values(Uplo::Upper, Uplo::Lower),
                       ::testing::Values(Trans::No, Trans::Yes)));

TEST(Trsv, MatchesTrsm) {
  const idx n = 9;
  DenseMatrix t = random_triangular(n, Uplo::Lower, Layout::ColMajor, 17);
  auto b = random_vector(n, 18);
  auto b2 = b;
  trsv(Uplo::Lower, Trans::No, t.cview(), b.data());
  DenseView bv{b2.data(), n, 1, n, Layout::ColMajor};
  trsm(Uplo::Lower, Trans::No, t.cview(), bv);
  for (idx i = 0; i < n; ++i) EXPECT_NEAR(b[i], b2[i], 1e-13);
}

TEST(Trsm, EmptyRhsIsNoop) {
  DenseMatrix t = random_triangular(4, Uplo::Upper, Layout::ColMajor, 19);
  DenseMatrix b(4, 0, Layout::ColMajor);
  EXPECT_NO_THROW(trsm(Uplo::Upper, Trans::No, t.cview(), b.view()));
}

TEST(Gemm, DimensionMismatchThrows) {
  DenseMatrix a(3, 4), b(5, 2), c(3, 2);
  EXPECT_THROW(
      gemm(1.0, a.cview(), Trans::No, b.cview(), Trans::No, 0.0, c.view()),
      std::invalid_argument);
}


TEST(PaddedViews, KernelsHonorNonNaturalLeadingDimension) {
  // The symmetric triangle packing stores two m x m triangles in one
  // m x (m+1) buffer, so every kernel must respect ld > rows.
  const idx m = 7;
  std::vector<double> buf(static_cast<std::size_t>(m) * (m + 1), -7.0);
  DenseView packed_upper{buf.data(), m, m, m + 1, Layout::ColMajor};
  DenseView packed_lower{buf.data() + 1, m, m, m + 1, Layout::ColMajor};

  DenseMatrix a = random_matrix(12, m, Layout::RowMajor, 71);
  DenseMatrix b = random_matrix(12, m, Layout::RowMajor, 72);
  syrk(Uplo::Upper, Trans::Yes, 1.0, a.cview(), 0.0, packed_upper);
  syrk(Uplo::Lower, Trans::Yes, 1.0, b.cview(), 0.0, packed_lower);

  // Reference results in plain storage.
  DenseMatrix ra(m, m), rb(m, m);
  syrk(Uplo::Upper, Trans::Yes, 1.0, a.cview(), 0.0, ra.view());
  syrk(Uplo::Lower, Trans::Yes, 1.0, b.cview(), 0.0, rb.view());
  for (idx r = 0; r < m; ++r)
    for (idx c = 0; c < m; ++c) {
      if (c >= r) {
        EXPECT_NEAR(packed_upper.at(r, c), ra.at(r, c), 1e-13);
      }
      if (c <= r) {
        EXPECT_NEAR(packed_lower.at(r, c), rb.at(r, c), 1e-13);
      }
    }

  // SYMV through both packed views must match the plain ones.
  auto x = random_vector(m, 73);
  std::vector<double> y1(m, 0.0), y2(m, 0.0);
  symv(Uplo::Upper, 1.0, ConstDenseView(packed_upper), x.data(), 0.0,
       y1.data());
  symv(Uplo::Upper, 1.0, ra.cview(), x.data(), 0.0, y2.data());
  for (idx i = 0; i < m; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-13);
  std::vector<double> y3(m, 0.0), y4(m, 0.0);
  symv(Uplo::Lower, 1.0, ConstDenseView(packed_lower), x.data(), 0.0,
       y3.data());
  symv(Uplo::Lower, 1.0, rb.cview(), x.data(), 0.0, y4.data());
  for (idx i = 0; i < m; ++i) EXPECT_NEAR(y3[i], y4[i], 1e-13);
}

TEST(PaddedViews, PackedTrianglesDoNotOverlap) {
  const idx m = 9;
  std::vector<double> buf(static_cast<std::size_t>(m) * (m + 1), 0.0);
  DenseView up{buf.data(), m, m, m + 1, Layout::ColMajor};
  DenseView lo{buf.data() + 1, m, m, m + 1, Layout::ColMajor};
  for (idx r = 0; r < m; ++r)
    for (idx c = r; c < m; ++c) up.at(r, c) = 1.0;
  for (idx r = 0; r < m; ++r)
    for (idx c = 0; c <= r; ++c) lo.at(r, c) = 2.0;
  // The upper triangle written first must be intact.
  for (idx r = 0; r < m; ++r)
    for (idx c = r; c < m; ++c) EXPECT_EQ(up.at(r, c), 1.0);
}

}  // namespace
}  // namespace feti::la
