#pragma once

// The FETI preconditioner layer: string-keyed M⁻¹ approximations applied
// once per PCPG iteration (line 12 of Algorithm 1). Every preconditioner
// follows the same staged lifecycle as the dual operators —
//
//   prepare()        — once per problem pattern: boundary/interior splits,
//                      Schur symbolic analysis, persistent device buffers;
//   update_values()  — once per time step: reassembles the per-subdomain
//                      blocks M̃ᵢ of the subdomains whose K values changed
//                      (dirty tracking via core::ValueTracker, counted in
//                      cache_stats() exactly like a dual operator);
//   apply(x, y)      — per PCPG iteration: y = M⁻¹ x on cluster-wide dual
//                      vectors;
//   apply(X, Y, nrhs)— batched application to nrhs dual vectors stored as
//                      contiguous columns, so Pcpg::solve_many waves stay
//                      batched end to end (base fallback loops and counts
//                      in loop_fallback_count()).
//
// The built-in kinds, all of the form M⁻¹ = Σᵢ B̃ᵢ D (·) D B̃ᵢᵀ:
//
//   none        — identity (PCPG degenerates to plain projected CG);
//   lumped      — M̃ᵢ = B̃ᵢ Kᵢ B̃ᵢᵀ with the original singular stiffness;
//   superlumped — the diagonal-of-K approximation of lumped;
//   dirichlet   — M̃ᵢ = B_b Sᵢ B_bᵀ with Sᵢ = K_bb − K_bi K_ii⁻¹ K_ib the
//                 boundary Schur complement (boundary = the column support
//                 of B̃ᵢ, which in Total FETI includes the Dirichlet rows).
//
// Each kind exists unscaled, with multiplicity scaling (D = 1/#subdomains
// sharing the multiplier) and with stiffness scaling (D from the relative
// K-diagonal weights κ of the sharing subdomains — the superlumped weights
// of the classical scaled preconditioners). The diagonal is applied on BOTH
// sides of M̃ᵢ, so every variant stays symmetric positive semidefinite on
// the dual space. Scaling weights are never baked into the cached blocks:
// stiffness weights depend on the *neighbors'* K values and are recomputed
// whenever any subdomain refreshes.

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/lifecycle.hpp"
#include "decomp/feti_problem.hpp"
#include "util/timer.hpp"

namespace feti::gpu {
class ExecutionContext;
}

namespace feti::precond {

/// The preconditioner kind — the first token of a registry key.
enum class Kind : std::uint8_t { None, Lumped, Superlumped, Dirichlet };

/// The scaling variant — the optional second token of a registry key.
enum class Scaling : std::uint8_t { None, Multiplicity, Stiffness };

const char* to_string(Kind k);
const char* to_string(Scaling s);

class Preconditioner {
 public:
  explicit Preconditioner(const decomp::FetiProblem& p) : p_(p) {}
  virtual ~Preconditioner() = default;

  Preconditioner(const Preconditioner&) = delete;
  Preconditioner& operator=(const Preconditioner&) = delete;

  /// Once per pattern: boundary splits, symbolic analysis, persistent
  /// allocations. Must be called before update_values().
  virtual void prepare() = 0;

  /// Per time step: reassembles the M̃ᵢ blocks of the dirty subdomains and
  /// refreshes the scaling weights when needed. Same change-detection
  /// contract as DualOperator::update_values() (versions, or content
  /// hashes under ValueTracking::Hashed).
  virtual void update_values() = 0;

  /// y = M⁻¹ x on cluster-wide dual vectors (valid after update_values()).
  void apply(const double* x, double* y);
  /// Y(:,j) = M⁻¹ X(:,j) for j in [0, nrhs); columns are contiguous
  /// cluster-wide dual vectors (leading dimension num_lambdas).
  void apply(const double* x, double* y, idx nrhs);

  /// The execution context whose device holds this preconditioner's state,
  /// or null when there is no device-resident application path. Non-null
  /// enables apply_device() — used by the device-state PCPG mode to feed
  /// device residual columns straight into the preconditioner without
  /// host staging. Same contract as DualOperator::device_context().
  [[nodiscard]] virtual gpu::ExecutionContext* device_context() {
    return nullptr;
  }

  /// Device-resident application: d_x / d_y are device allocations of
  /// device_context()'s device holding nrhs contiguous cluster-wide columns
  /// (leading dimension num_lambdas). Synchronous; bit-identical to the
  /// host-pointer apply() of the same nrhs. Valid only when
  /// device_context() != nullptr.
  void apply_device(const double* d_x, double* d_y, idx nrhs = 1);

  /// The registry key this instance was created under ("dirichlet
  /// stiffness gpu", ...).
  [[nodiscard]] virtual const char* key() const = 0;

  [[nodiscard]] const decomp::FetiProblem& problem() const { return p_; }
  [[nodiscard]] TimingRegistry& timings() { return timings_; }

  /// Batched applies served by the base-class loop instead of a real block
  /// implementation — stays 0 for every built-in (asserted by the
  /// consistency tests). Same contract as the dual-operator counter.
  [[nodiscard]] virtual long loop_fallback_count() const {
    return loop_fallbacks_.load(std::memory_order_relaxed);
  }

  /// Time-step cache counters, identical in meaning to
  /// DualOperator::cache_stats().
  [[nodiscard]] virtual core::CacheStats cache_stats() const {
    return cache_stats_.snapshot();
  }

 protected:
  /// Single-vector hook: y = M⁻¹ x.
  virtual void apply_one(const double* x, double* y) = 0;
  /// Batched hook; the default loops over apply_one (counted).
  virtual void apply_many(const double* x, double* y, idx nrhs);
  /// Device-pointer hook behind apply_device(). Overriders may assume
  /// nrhs >= 1 and must dispatch nrhs == 1 through the same local kernels
  /// as apply_one (SYMV vs SYMM differ bitwise). The default rejects.
  virtual void apply_many_device(const double* d_x, double* d_y, idx nrhs);

  using UpdatePlan = core::UpdatePlan;
  UpdatePlan begin_update();
  void end_update(const UpdatePlan& plan);

  const decomp::FetiProblem& p_;
  mutable TimingRegistry timings_;
  std::atomic<long> loop_fallbacks_{0};
  core::AtomicCacheStats cache_stats_;

 private:
  core::ValueTracker tracker_;
};

/// Per-subdomain, per-local-multiplier scaling diagonals D for `scaling`.
/// Multiplicity: 1 / (number of subdomains sharing the cluster multiplier).
/// Stiffness: w_{s,r} = (total_r − κ_{s,r}) / total_r with
/// κ_{s,r} = Σⱼ B̃ᵢ(r,j)² Kⱼⱼ and total_r the cluster-wide sum over the
/// sharing subdomains; multipliers seen by a single subdomain (the
/// Dirichlet rows of Total FETI) keep weight 1, as does any row whose
/// total vanishes. Scaling::None returns an empty vector (no weighting).
[[nodiscard]] std::vector<std::vector<double>> compute_scaling_weights(
    const decomp::FetiProblem& p, Scaling scaling);

/// Creates the preconditioner registered under `key` (see
/// precond::PreconditionerRegistry); the context is required for the GPU
/// variants and ignored otherwise. "" resolves to "none".
std::unique_ptr<Preconditioner> make_preconditioner(
    const decomp::FetiProblem& problem, std::string_view key,
    gpu::ExecutionContext* context = nullptr);

}  // namespace feti::precond
